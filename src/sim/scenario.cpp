#include "sim/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cap/taps.h"
#include "check/check.h"
#include "obs/obs.h"
#include "pbe/pbe_sender.h"
#include "sim/algorithms.h"
#include "tel/sampler.h"

namespace pbecc::sim {

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  for (std::size_t i = 0; i < cfg_.cells.size(); ++i) {
    phy::CellConfig cc;
    cc.id = static_cast<phy::CellId>(i + 1);
    cc.bandwidth_mhz = cfg_.cells[i].bandwidth_mhz;
    cc.pdcch_coding = cfg_.cells[i].convolutional_pdcch
                          ? phy::PdcchCoding::kConvolutional
                          : phy::PdcchCoding::kRepetition;
    cell_cfgs_.push_back(cc);
  }
  mac::BaseStationConfig bs_cfg;
  bs_cfg.scheduler = cfg_.scheduler;
  bs_cfg.seed = rng_.next_u64();
  // Per-cell control-traffic intensity is folded into one generator config;
  // BaseStation forks seeds per cell. Use the first cell's figure for all
  // (location profiles keep them equal).
  bs_cfg.control_traffic.users_per_subframe =
      cfg_.cells.front().control_users_per_subframe;
  bs_ = std::make_unique<mac::BaseStation>(loop_, cell_cfgs_, bs_cfg);
  if (cfg_.fault.active()) {
    faults_ = std::make_unique<fault::FaultInjector>(cfg_.fault, cfg_.fault_seed);
  }
}

phy::Rnti Scenario::rnti_for(mac::UeId ue) const {
  return static_cast<phy::Rnti>(0x100 + ue);
}

void Scenario::add_ue(const UeSpec& spec) {
  mac::UeConfig cfg;
  cfg.id = spec.id;
  cfg.rnti = rnti_for(spec.id);
  for (std::size_t idx : spec.cell_indices) {
    cfg.aggregated_cells.push_back(cell_cfgs_.at(idx).id);
  }
  cfg.channel.trace = spec.trace;
  cfg.channel.noise_floor_dbm = spec.noise_floor_dbm;
  cfg.channel.seed = rng_.next_u64();
  cfg.ca = spec.ca;
  cfg.scheduling_weight = spec.scheduling_weight;

  ue_specs_[spec.id] = spec;
  const mac::UeId id = spec.id;
  bs_->add_ue(cfg, [this, id](net::Packet pkt) {
    auto& receivers = ue_receivers_[id];
    const auto it = receivers.find(pkt.flow);
    if (it != receivers.end()) it->second->on_packet(std::move(pkt));
    // Unknown flow (background session payload): discarded at the UE.
  });
}

int Scenario::add_flow(const FlowSpec& spec) {
  if (!ue_specs_.contains(spec.ue)) {
    throw std::invalid_argument("add_flow: UE not registered");
  }
  auto ctx = std::make_unique<FlowCtx>();
  ctx->spec = spec;
  ctx->stats = std::make_unique<FlowStats>();
  const auto flow_id = static_cast<net::FlowId>(flows_.size() + 1);

  // --- Controller (and PBE client when needed).
  std::unique_ptr<net::CongestionController> cc;
  if (spec.algo == "fixed") {
    if (spec.fixed_rate <= 0) throw std::invalid_argument("fixed flow needs rate");
    cc = std::make_unique<net::FixedRateController>(spec.fixed_rate);
  } else if (spec.algo == "pbe" && spec.pbe_cwnd_gain > 0) {
    pbe::PbeSenderConfig pscfg;
    pscfg.cwnd_gain = spec.pbe_cwnd_gain;
    pscfg.seed = rng_.next_u64();
    cc = std::make_unique<pbe::PbeSender>(pscfg);
  } else {
    cc = make_controller(spec.algo, rng_.next_u64());
  }

  // --- Downlink path: sender -> [Internet bottleneck] -> delay -> BS queue.
  const mac::UeId ue = spec.ue;
  ctx->downlink = std::make_unique<net::DelayLink>(
      loop_, spec.path.one_way_delay,
      [this, ue](net::Packet pkt) { bs_->enqueue(ue, std::move(pkt)); },
      spec.path.jitter, rng_.next_u64());

  net::PacketHandler egress;
  if (spec.path.internet_rate > 0) {
    net::BottleneckLink::Config bl;
    bl.rate = spec.path.internet_rate;
    bl.buffer_bytes = spec.path.internet_buffer_bytes;
    bl.propagation_delay = 0;  // delay applied by the DelayLink stage
    ctx->bottleneck = std::make_unique<net::BottleneckLink>(
        loop_, bl, [d = ctx->downlink.get()](net::Packet pkt) { d->send(std::move(pkt)); });
    egress = [b = ctx->bottleneck.get()](net::Packet pkt) { b->send(std::move(pkt)); };
  } else {
    egress = [d = ctx->downlink.get()](net::Packet pkt) { d->send(std::move(pkt)); };
  }

  // --- Sender.
  net::FlowSender::Config scfg;
  scfg.id = flow_id;
  scfg.start_time = spec.start;
  scfg.stop_time = spec.stop;
  ctx->sender = std::make_unique<net::FlowSender>(loop_, scfg, std::move(cc),
                                                  std::move(egress));

  // --- Receiver; ACKs return over a symmetric fixed-delay uplink.
  auto* sender_ptr = ctx->sender.get();
  const util::Duration up_delay = spec.path.one_way_delay;
  ctx->receiver = std::make_unique<net::FlowReceiver>(
      loop_, flow_id, [this, sender_ptr, up_delay, flow_id](net::Ack ack) {
        util::Duration delay = up_delay;
        if (faults_) {
          const fault::FeedbackFault ff = faults_->feedback_fault(
              loop_.now(), static_cast<std::uint32_t>(flow_id), ack.seq);
          if (ff.drop) {
            if constexpr (obs::kCompiled) {
              static obs::Counter& drops = obs::counter("fault.feedback_drops");
              drops.inc();
              obs::emit(obs::EventKind::kFaultInjected, loop_.now(), 0,
                        static_cast<std::uint32_t>(
                            fault::FaultType::kFeedbackDrop),
                        static_cast<std::int64_t>(flow_id));
            }
            return;  // the ACK never reaches the sender
          }
          if (ff.corrupt && ack.pbe_rate_interval_us != 0) {
            ack.pbe_rate_interval_us = faults_->corrupt_word(
                ack.pbe_rate_interval_us, static_cast<std::uint32_t>(flow_id),
                ack.seq);
            if constexpr (obs::kCompiled) {
              static obs::Counter& corruptions =
                  obs::counter("fault.feedback_corruptions");
              corruptions.inc();
              obs::emit(obs::EventKind::kFaultInjected, loop_.now(), 0,
                        static_cast<std::uint32_t>(
                            fault::FaultType::kFeedbackCorrupt),
                        static_cast<std::int64_t>(flow_id));
            }
          }
          bool& spiking = in_delay_spike_[flow_id];
          if (ff.extra_delay > 0) {
            delay += ff.extra_delay;
            if (!spiking) {
              spiking = true;
              if constexpr (obs::kCompiled) {
                static obs::Counter& spikes =
                    obs::counter("fault.feedback_delay_spikes");
                spikes.inc();
                obs::emit(obs::EventKind::kFaultInjected, loop_.now(), 0,
                          static_cast<std::uint32_t>(
                              fault::FaultType::kFeedbackDelay),
                          static_cast<std::int64_t>(flow_id));
              }
            }
          } else {
            spiking = false;
          }
        }
        loop_.schedule_in(delay, [sender_ptr, ack] { sender_ptr->on_ack(ack); });
      });
  ctx->receiver->set_delivery_observer(
      [st = ctx->stats.get()](const net::Packet& pkt, util::Time now) {
        st->on_delivery(pkt, now);
      });

  // --- ABC-style oracle: the base station stamps each ACK with its own
  // fair-share estimate for this user (no endpoint measurement involved).
  if (spec.algo == "abc") {
    ctx->receiver->set_feedback_filler(
        [this, ue](const net::Packet&, util::Time, net::Ack& ack) {
          const util::RateBps rate = bs_->explicit_rate_bps(ue);
          if (rate > 1000.0) {
            ack.pbe_rate_interval_us = static_cast<std::uint32_t>(
                std::clamp(1500.0 * 8.0 / rate * 1e6, 1.0, 4e9));
          }
        });
  }

  // --- PBE-CC client: decoder monitor + feedback filler.
  if (needs_pbe_client(spec.algo)) {
    pbe::PbeClientConfig pcfg;
    pcfg.rnti = rnti_for(spec.ue);
    for (std::size_t idx : ue_specs_.at(spec.ue).cell_indices) {
      pcfg.cells.push_back(cell_cfgs_.at(idx));
    }
    pcfg.seed = rng_.next_u64();
    pcfg.faults = faults_.get();
    if (!spec.pbe_control_filter) {
      pcfg.tracker.min_active_subframes = 0;
      pcfg.tracker.min_average_prbs = 0;
    }
    const double extra_ber = spec.pbe_monitor_extra_ber;
    ctx->client = std::make_unique<pbe::PbeClient>(
        pcfg, [this, ue, extra_ber](phy::CellId cell) {
          auto ch = bs_->channel_state(ue, cell);
          ch.control_ber += extra_ber;
          return ch;
        });
    // Capture and telemetry taps both attach to the first PBE flow; they
    // compose into one ClientTaps so record+telemetry runs work.
    pbe::ClientTaps taps{};
    bool want_taps = false;
    if ((cfg_.capture != nullptr || cfg_.digest != nullptr) &&
        !capture_attached_) {
      capture_attached_ = true;
      if (cfg_.capture != nullptr && !cfg_.capture->begun()) {
        cfg_.capture->begin(cap::capture_header(pcfg, faults_.get()));
      }
      taps = cap::make_client_taps(cfg_.capture, cfg_.digest);
      want_taps = true;
    }
    if constexpr (tel::kCompiled) {
      if (cfg_.telemetry != nullptr && telemetry_flow_ < 0) {
        telemetry_flow_ = static_cast<int>(flows_.size());
        auto& rec = cfg_.telemetry->recorder();
        rec.set_meta("algo", spec.algo);
        rec.set_meta("seed", std::to_string(cfg_.seed));
        rec.set_meta("interval_us", std::to_string(cfg_.telemetry->interval()));
        rec.set_meta("fault_active", cfg_.fault.active() ? "1" : "0");
        if (cfg_.fault.active()) {
          rec.set_meta("fault_seed", std::to_string(cfg_.fault_seed));
        }
        auto& pipeline = cfg_.telemetry->pipeline();
        pipeline.attach(&ctx->client->monitor(), &ctx->client->estimator());
        taps.on_batch_end = [p = &pipeline](std::int64_t sf) {
          p->on_batch_end(sf);
        };
        want_taps = true;
      }
    }
    if (want_taps) ctx->client->set_taps(std::move(taps));
    // Batched: the client's monitor decodes all of one tick's cells at
    // once, fanning out on the pbecc::par pool when --threads > 1.
    bs_->add_pdcch_batch_observer(
        [c = ctx->client.get()](const std::vector<phy::PdcchSubframe>& sfs) {
          c->on_pdcch_batch(sfs);
        });
    ctx->receiver->set_feedback_filler(
        [c = ctx->client.get()](const net::Packet& pkt, util::Time now, net::Ack& ack) {
          c->fill_feedback(pkt, now, ack);
        });
  }

  ue_receivers_[spec.ue][flow_id] = ctx->receiver.get();
  flows_.push_back(std::move(ctx));
  return static_cast<int>(flows_.size()) - 1;
}

void Scenario::add_background(const BackgroundSpec& spec) {
  std::vector<mac::UeId> users;
  for (int i = 0; i < spec.n_users; ++i) {
    const mac::UeId id = next_bg_ue_++;
    mac::UeConfig cfg;
    cfg.id = id;
    cfg.rnti = rnti_for(id);
    cfg.aggregated_cells = {cell_cfgs_.at(spec.cell_index).id};
    const double rssi = rng_.normal(spec.rssi_mean_dbm, spec.rssi_sigma_db);
    cfg.channel.trace = phy::MobilityTrace::stationary(rssi);
    cfg.channel.seed = rng_.next_u64();
    bs_->add_ue(cfg, [](net::Packet) { /* background payload: discard */ });
    users.push_back(id);
  }
  schedule_bg_sessions(spec, std::move(users));
}

void Scenario::schedule_bg_sessions(const BackgroundSpec& spec,
                                    std::vector<mac::UeId> users) {
  if (users.empty() || spec.sessions_per_sec <= 0) return;
  // Recurring Poisson session arrivals. Each session trickles fixed-rate
  // packets straight into its user's base-station queue (the wired leg of
  // background flows is irrelevant to the cell under study).
  const auto arrival = [this, spec, users](const auto& self) -> void {
    const auto gap = static_cast<util::Duration>(
        rng_.exponential(1.0 / spec.sessions_per_sec) * util::kSecond);
    loop_.schedule_in(std::max<util::Duration>(gap, util::kMillisecond), [this, spec, users, self] {
      const mac::UeId ue =
          users[static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1))];
      const double rate = rng_.uniform(spec.rate_lo, spec.rate_hi);
      const auto duration = static_cast<util::Duration>(
          rng_.exponential(util::to_seconds(spec.mean_duration)) * util::kSecond);
      const util::Time end = loop_.now() + std::max<util::Duration>(duration, 10 * util::kMillisecond);
      const auto flow = static_cast<net::FlowId>(bg_flow_seq_++);
      const util::Duration interval =
          util::transmission_delay(net::kDefaultMss, rate);

      // Per-session packet pump.
      const auto pump = [this, ue, end, flow, interval](const auto& pump_self) -> void {
        if (loop_.now() >= end) return;
        net::Packet pkt;
        pkt.flow = flow;
        pkt.seq = 0;
        pkt.bytes = net::kDefaultMss;
        pkt.sent_time = loop_.now();
        bs_->enqueue(ue, std::move(pkt));
        loop_.schedule_in(std::max<util::Duration>(interval, 50), [pump_self] { pump_self(pump_self); });
      };
      pump(pump);
      self(self);  // schedule the next session arrival
    });
  };
  arrival(arrival);
}

void Scenario::schedule_telemetry_sampling() {
  if (!tel::kCompiled || cfg_.telemetry == nullptr || telemetry_flow_ < 0) {
    return;
  }
  auto* ctx = flows_.at(static_cast<std::size_t>(telemetry_flow_)).get();
  const mac::UeId ue = ctx->spec.ue;
  tel::Recorder* rec = &cfg_.telemetry->recorder();
  const util::Duration interval =
      std::max<util::Duration>(cfg_.telemetry->interval(), util::kMillisecond);

  const auto sample = [this, ue, rec, sender = ctx->sender.get(),
                       client = ctx->client.get()](util::Time now) {
    // Scheduler-side ground truth, one series set per active cell. The
    // sampling event was scheduled before this tick's base-station event,
    // so at t it reads state as of subframe t-1 — the same subframe the
    // pipeline half's sample at t covers (estimator `now` convention).
    for (const auto& gt : bs_->ground_truth(ue)) {
      const std::string base = "truth.cell" + std::to_string(gt.cell) + ".";
      rec->append_f64(base + "fair_bits_sf", "bits/sf", now, gt.fair_bits_sf);
      rec->append_f64(base + "avail_bits_sf", "bits/sf", now, gt.avail_bits_sf);
      rec->append_i64(base + "users", "users", now, gt.active_users);
      rec->append_i64(base + "idle_prbs", "prbs", now, gt.idle_prbs);
      rec->append_i64(base + "own_prbs", "prbs", now, gt.own_prbs);
    }
    // Flow transport state.
    rec->append_f64("flow.pacing_bps", "bps", now,
                    sender->controller().pacing_rate(now));
    rec->append_f64("flow.cwnd_bytes", "bytes", now,
                    sender->controller().cwnd_bytes(now));
    rec->append_i64("flow.inflight_bytes", "bytes", now,
                    static_cast<std::int64_t>(sender->bytes_in_flight()));
    rec->append_i64("flow.delivered_bytes", "bytes", now,
                    static_cast<std::int64_t>(sender->total_delivered_bytes()));
    rec->append_i64("flow.srtt_us", "us", now, sender->smoothed_rtt());
    // Degradation machine + client state (PBE flows).
    if (const auto* ps =
            dynamic_cast<const pbe::PbeSender*>(&sender->controller())) {
      rec->append_i64("pbe.degradation_state", "state", now,
                      static_cast<std::int64_t>(ps->degradation_state()));
      rec->append_f64("pbe.confidence", "ratio", now,
                      ps->degradation().confidence());
      rec->append_f64("pbe.feedback_bps", "bps", now, ps->feedback_rate());
      rec->append_i64("pbe.rtprop_us", "us", now, ps->rtprop());
      // Hybrid estimator cross-check (DESIGN.md §13). The sidecar runs for
      // every PbeSender, so the delay-side series are always meaningful;
      // blend weight is pinned at 1 for non-hybrid flows.
      rec->append_f64("pbe.blend_weight", "ratio", now, ps->blend_weight());
      rec->append_i64("pbe.divergence", "bool", now,
                      ps->degradation().diverged() ? 1 : 0);
      rec->append_f64("bwe.target_bps", "bps", now,
                      ps->delay_bwe().target_bps());
      rec->append_f64("bwe.acked_bps", "bps", now,
                      ps->delay_bwe().acked_bps());
      rec->append_f64("bwe.trendline_slope", "ms/ms", now,
                      ps->delay_bwe().trendline().slope());
      rec->append_i64("bwe.overuse_state", "state", now,
                      static_cast<std::int64_t>(ps->delay_bwe().usage()));
    }
    if (client != nullptr) {
      rec->append_i64("pbe.client_state", "state", now,
                      static_cast<std::int64_t>(client->state()));
    }
    // Base-station queue depth and invariant violations.
    rec->append_i64("bs.queue_bytes", "bytes", now, bs_->queue_bytes(ue));
    rec->append_i64("check.violations", "count", now,
                    static_cast<std::int64_t>(check::violations()));
  };

  // Recurring event on exact k*interval sim-clock boundaries. Each firing
  // schedules the next, so a sample event always enters the queue before
  // the same-timestamp base-station tick (FIFO tie-break) — see above.
  const auto tick = [this, sample, interval](const auto& self) -> void {
    const util::Time now = loop_.now();
    const util::Time next = (now / interval) * interval + interval;
    loop_.schedule_in(next - now, [this, sample, self] {
      sample(loop_.now());
      self(self);
    });
  };
  tick(tick);
}

void Scenario::run_until(util::Time t) {
  if (!started_) {
    started_ = true;
    bs_->start();
    schedule_telemetry_sampling();
    if (faults_ && cfg_.fault.handover_storm_duty > 0 &&
        cfg_.fault.handover_interval > 0) {
      // Storm driver: every handover_interval, while a storm window is
      // active, hand every foreground UE over (rotating its aggregated-cell
      // set; single-cell UEs are re-handed to the same cell, which still
      // abandons all in-flight HARQ blocks — the disruptive part).
      const auto driver = [this](const auto& self) -> void {
        loop_.schedule_in(cfg_.fault.handover_interval, [this, self] {
          if (faults_->handover_storm(loop_.now())) {
            for (auto& [id, spec] : ue_specs_) {
              const std::size_t k = ++handover_rotation_[id];
              const auto& idxs = spec.cell_indices;
              std::vector<phy::CellId> cells;
              cells.reserve(idxs.size());
              for (std::size_t i = 0; i < idxs.size(); ++i) {
                cells.push_back(cell_cfgs_.at(idxs[(i + k) % idxs.size()]).id);
              }
              bs_->handover(id, cells);
              if constexpr (obs::kCompiled) {
                static obs::Counter& storms =
                    obs::counter("fault.storm_handovers");
                storms.inc();
                obs::emit(obs::EventKind::kFaultInjected, loop_.now(),
                          static_cast<std::uint16_t>(cells.front()),
                          static_cast<std::uint32_t>(
                              fault::FaultType::kHandoverStorm),
                          static_cast<std::int64_t>(id));
              }
            }
          }
          self(self);
        });
      };
      driver(driver);
    }
  }
  loop_.run_until(t);
}

}  // namespace pbecc::sim
