// Location profiles for the paper's stationary-link study (§6.3.1):
// 40 locations covering every combination of indoor/outdoor, busy/idle
// cells and one/two/three aggregated carriers (the Redmi 8 / MIX3 / S8
// device split), plus the AWS-like server RTT spread.
#pragma once

#include <cstdint>
#include <string>

#include "sim/scenario.h"

namespace pbecc::sim {

struct LocationProfile {
  int index = 0;
  bool indoor = true;
  bool busy = true;
  int n_cells = 1;  // aggregated carriers the device supports (1..3)
  double rssi_dbm = -95.0;
  util::Duration one_way_delay = 25 * util::kMillisecond;
  std::uint64_t seed = 0;
  // Encode every cell's PDCCH with the 36.212 convolutional code instead
  // of repetition coding (run_experiment --conv-pdcch). Off in the paper's
  // 40-location study; the Viterbi replay corpus (README "Decode
  // throughput") records with it on so bench_replay exercises the
  // lockstep batch decoder.
  bool convolutional_pdcch = false;
  // 5G NR secondary carriers (run_experiment --nr): numerology mu for the
  // secondary cells, or -1 for an all-LTE location (the paper's study).
  // mu 0/1/3 -> 15/30/120 kHz SCS. The primary carrier always stays LTE,
  // so enabling this exercises mixed LTE+NR carrier aggregation: PDCCH
  // monitoring over heterogeneous search spaces and capacity fusion over
  // heterogeneous slot clocks (DESIGN.md section 16).
  int nr_numerology = -1;

  std::string describe() const;
};

inline constexpr int kNumLocations = 40;

// Deterministic profile for location `idx` in [0, kNumLocations).
// The mix matches the paper: 25 busy links, 15 idle; 10 single-cell
// (Redmi 8), 15 two-cell (MIX3), 15 three-cell (S8); indoor/outdoor split.
LocationProfile location(int idx);

// Build the scenario for a location: cells, background load, control
// traffic, and the single UE (id 1) with the profile's carrier count.
// The caller then adds flows for the algorithm(s) under test.
ScenarioConfig scenario_config_for(const LocationProfile& loc);
UeSpec ue_spec_for(const LocationProfile& loc);
void add_location_background(Scenario& s, const LocationProfile& loc);

// Convenience: run one 20-second flow of `algo` at this location and
// return its stats (throughput Mbit/s, delays ms).
struct LocationRunResult {
  double avg_tput_mbps = 0;
  double avg_delay_ms = 0;
  double p95_delay_ms = 0;
  double median_delay_ms = 0;
  bool ca_triggered = false;
  double internet_state_fraction = 0;  // PBE only
  util::SampleSet window_tputs;
  util::SampleSet delays_ms;
  // Bench instrumentation (bench/bench_common.h JSON records):
  double wall_ms = 0;                    // real time spent simulating
  std::uint64_t sim_cell_subframes = 0;  // simulated subframes x cells
  std::uint64_t decode_candidates = 0;   // blind-decode attempts (PBE only)
};
// Optional pbecc::cap / pbecc::tel hookup for a run: record the PBE
// pipeline into `writer`, digest its outputs, and/or sample run telemetry
// into `telemetry` (all unowned, all may be null).
struct CaptureOptions {
  cap::TraceWriter* writer = nullptr;
  cap::PipelineDigest* digest = nullptr;
  tel::Sampler* telemetry = nullptr;
};

// `fault` (optional) runs the flow under a deterministic chaos schedule
// seeded with `fault_seed` (see fault::FaultProfile / --fault-profile).
LocationRunResult run_location(const LocationProfile& loc, const std::string& algo,
                               util::Duration flow_len = 20 * util::kSecond,
                               const fault::FaultProfile* fault = nullptr,
                               std::uint64_t fault_seed = 1,
                               const CaptureOptions& capture = {});

}  // namespace pbecc::sim
