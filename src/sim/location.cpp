#include "sim/location.h"

#include <chrono>
#include <cstdio>

namespace pbecc::sim {

std::string LocationProfile::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "loc%02d %s %s %dCC rssi=%.0fdBm rtt=%lldms",
                index, indoor ? "indoor" : "outdoor", busy ? "busy" : "idle",
                n_cells, rssi_dbm,
                static_cast<long long>(2 * one_way_delay / util::kMillisecond));
  return buf;
}

LocationProfile location(int idx) {
  LocationProfile p;
  p.index = idx;
  p.seed = 0xbeefULL + static_cast<std::uint64_t>(idx) * 7919;

  // Device split: 10 single-cell, 15 two-cell, 15 three-cell (paper: the
  // Redmi 8 in 10 locations, the MIX3 and S8 elsewhere).
  if (idx < 10) {
    p.n_cells = 1;
  } else if (idx < 25) {
    p.n_cells = 2;
  } else {
    p.n_cells = 3;
  }
  // 25 busy links, 15 idle (paper Table 1 averaging sets): make every
  // idx % 8 in {5, 6, 7} idle -> 15 of 40.
  p.busy = (idx % 8) < 5;
  p.indoor = (idx % 2) == 0;

  // Indoor locations sit deeper in the building; a little deterministic
  // per-location spread on top.
  const double spread = static_cast<double>((idx * 37) % 7) - 3.0;  // [-3, +3]
  p.rssi_dbm = (p.indoor ? -97.0 : -91.0) + spread;

  // Server RTT spread (three US AWS regions in the paper): 40-80 ms RTT.
  p.one_way_delay = (20 + (idx * 13) % 21) * util::kMillisecond;
  return p;
}

ScenarioConfig scenario_config_for(const LocationProfile& loc) {
  ScenarioConfig cfg;
  cfg.seed = loc.seed;
  cfg.cells.clear();
  // Primary 10 MHz plus up to two secondaries (10 and 5 MHz) — capacities
  // that land the end-to-end rates in the paper's 20-100 Mbit/s band.
  const double bands[3] = {10.0, 10.0, 5.0};
  const double ctrl = loc.busy ? 0.4 : 0.02;
  for (int i = 0; i < 3; ++i) {
    CellSpec cell{bands[i], ctrl};
    cell.convolutional_pdcch = loc.convolutional_pdcch;
    if (loc.nr_numerology >= 0 && i > 0) {
      // Mixed LTE+NR CA: the primary stays LTE, secondaries become NR at
      // the requested numerology. Bandwidths follow 38.101 channels whose
      // PRB counts sit near the LTE secondaries they replace, keeping the
      // end-to-end rates in the same band as the all-LTE study; the
      // CORESET shrinks with the carrier so it always fits.
      cell.nr = true;
      cell.scs_khz = 15 << loc.nr_numerology;
      switch (loc.nr_numerology) {
        case 0:  // 15 kHz: 10 MHz -> 52 PRBs
          cell.bandwidth_mhz = 10.0;
          cell.coreset_rbs = 48;
          break;
        case 1:  // 30 kHz: 20 MHz -> 51 PRBs
          cell.bandwidth_mhz = 20.0;
          cell.coreset_rbs = 48;
          break;
        default:  // 120 kHz: 50 MHz -> 32 PRBs
          cell.bandwidth_mhz = 50.0;
          cell.coreset_rbs = 30;
          break;
      }
      cell.coreset_symbols = 2;
      // Third carrier doubles as the mini-slot showcase: URLLC-style
      // preemption shortens its HARQ turnaround to 2 slots.
      cell.mini_slot = (i == 2);
    }
    cfg.cells.push_back(cell);
  }
  return cfg;
}

UeSpec ue_spec_for(const LocationProfile& loc) {
  UeSpec ue;
  ue.id = 1;
  ue.cell_indices.clear();
  for (int i = 0; i < loc.n_cells; ++i) ue.cell_indices.push_back(static_cast<std::size_t>(i));
  ue.trace = phy::MobilityTrace::stationary(loc.rssi_dbm);
  if (loc.nr_numerology >= 0 && loc.n_cells >= 2) {
    // Under --fault-profile handover-storm these make the rotation cross
    // the RAT boundary: the UE swings between its full LTE+NR set, an
    // LTE-only set, and (with three carriers) a reduced mixed set, so an
    // LTE<->NR handover happens on every swing.
    ue.serving_sets.push_back({0});
    if (loc.n_cells >= 3) ue.serving_sets.push_back({0, 1});
  }
  return ue;
}

void add_location_background(Scenario& s, const LocationProfile& loc) {
  // Background data users on every cell; busy hours carry a real load,
  // late-night cells only sporadic short sessions.
  for (std::size_t c = 0; c < 3; ++c) {
    BackgroundSpec bg;
    bg.cell_index = c;
    bg.n_users = loc.busy ? 5 : 2;
    bg.sessions_per_sec = loc.busy ? 0.8 : 0.05;
    bg.mean_duration = loc.busy ? 1500 * util::kMillisecond : 500 * util::kMillisecond;
    bg.rate_lo = 1e6;
    bg.rate_hi = loc.busy ? 10e6 : 4e6;
    s.add_background(bg);
  }
}

LocationRunResult run_location(const LocationProfile& loc,
                               const std::string& algo,
                               util::Duration flow_len,
                               const fault::FaultProfile* fault,
                               std::uint64_t fault_seed,
                               const CaptureOptions& capture) {
  ScenarioConfig cfg = scenario_config_for(loc);
  if (fault != nullptr) {
    cfg.fault = *fault;
    cfg.fault_seed = fault_seed;
  }
  cfg.capture = capture.writer;
  cfg.digest = capture.digest;
  cfg.telemetry = capture.telemetry;
  const auto n_cells = cfg.cells.size();
  Scenario s{std::move(cfg)};
  s.add_ue(ue_spec_for(loc));
  add_location_background(s, loc);

  FlowSpec flow;
  flow.algo = algo;
  flow.ue = 1;
  flow.path.one_way_delay = loc.one_way_delay;
  flow.start = 100 * util::kMillisecond;
  flow.stop = flow.start + flow_len;
  const int f = s.add_flow(flow);

  const auto t0 = std::chrono::steady_clock::now();
  const util::Time sim_end = flow.stop + 500 * util::kMillisecond;
  s.run_until(sim_end);
  const auto t1 = std::chrono::steady_clock::now();
  s.stats(f).finish(flow.stop);

  LocationRunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.sim_cell_subframes = static_cast<std::uint64_t>(sim_end / util::kSubframe) *
                         static_cast<std::uint64_t>(n_cells);
  const auto& st = s.stats(f);
  r.avg_tput_mbps = st.avg_tput_mbps();
  r.avg_delay_ms = st.avg_delay_ms();
  r.p95_delay_ms = st.p95_delay_ms();
  r.median_delay_ms = st.median_delay_ms();
  r.ca_triggered = s.bs().ca(1).ever_aggregated();
  if (auto* c = s.pbe_client(f)) {
    r.internet_state_fraction = c->internet_state_fraction();
    r.decode_candidates = c->monitor().total_candidates_tried();
  }
  for (double v : st.window_tputs_mbps().samples()) r.window_tputs.add(v);
  for (double v : st.delays_ms().samples()) r.delays_ms.add(v);
  return r;
}

}  // namespace pbecc::sim
