// Factory for the congestion-control algorithms under test (paper §6.1:
// PBE-CC vs Sprout, Verus, BBR, CUBIC, Copa, PCC and PCC-Vivace).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/congestion_controller.h"

namespace pbecc::sim {

// The eight algorithms of the paper's evaluation, in its display order.
const std::vector<std::string>& all_algorithms();

// True for "pbe" — the scenario must attach a PbeClient to the receiver.
bool needs_pbe_client(const std::string& name);

// Construct a controller by name ("pbe", "bbr", "cubic", "copa", "verus",
// "sprout", "pcc", "vivace"). Throws std::invalid_argument on unknown name.
std::unique_ptr<net::CongestionController> make_controller(
    const std::string& name, std::uint64_t seed);

}  // namespace pbecc::sim
