// Factory for the congestion-control algorithms under test (paper §6.1:
// PBE-CC vs Sprout, Verus, BBR, CUBIC, Copa, PCC and PCC-Vivace).
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "net/congestion_controller.h"

namespace pbecc::sim {

// The eight algorithms of the paper's evaluation, in its display order.
// Deliberately excludes this repo's own additions so the paper-figure
// benches keep reproducing the paper's comparison unchanged.
const std::vector<std::string>& all_algorithms();

// This repo's additions beyond the paper: "gcc" (the delay-gradient BWE
// baseline) and "hybrid" (PBE x delay confidence-weighted blend,
// DESIGN.md §13).
const std::vector<std::string>& extra_algorithms();

// True for the algorithms that consume physical-layer feedback ("pbe",
// "hybrid") — the scenario must attach a PbeClient to the receiver.
bool needs_pbe_client(const std::string& name);

// Process-wide tuning overrides for the "hybrid" blend, applied by
// make_controller. NaN / negative fields mean "keep the default". Set once
// at startup (run_experiment --blend-*); not thread-safe against
// concurrent make_controller calls by design — the drivers construct all
// controllers up front.
struct HybridBlendOverrides {
  double zero_trust_below = std::numeric_limits<double>::quiet_NaN();
  double full_trust_above = std::numeric_limits<double>::quiet_NaN();
  double deadband = std::numeric_limits<double>::quiet_NaN();
  double hold_ms = -1.0;
  double divergence_ratio = std::numeric_limits<double>::quiet_NaN();
  double divergence_penalty = std::numeric_limits<double>::quiet_NaN();
};
void set_hybrid_blend_overrides(const HybridBlendOverrides& overrides);

// Construct a controller by name ("pbe", "bbr", "cubic", "copa", "verus",
// "sprout", "pcc", "vivace", "gcc", "hybrid"). Throws
// std::invalid_argument on unknown name.
std::unique_ptr<net::CongestionController> make_controller(
    const std::string& name, std::uint64_t seed);

}  // namespace pbecc::sim
