// Scenario: assembles end-to-end experiments — content servers behind
// Internet paths, the cellular base station with its component carriers,
// mobile users (optionally with PBE-CC clients attached to their
// receivers), and stochastic background traffic — mirroring the paper's
// testbed (Fig 10) in simulation.
//
// Sharding (DESIGN.md §15): cells are grouped into *clusters*
// (CellSpec::cluster). Each cluster becomes one shard domain with its own
// EventLoop and BaseStation, stepped independently between 1 ms subframe
// barriers. The only cross-domain edges — UE migration between clusters,
// downlink packets whose wired path terminates in another cluster, and
// in-order deliveries back to a flow's home receiver — travel as ordered,
// timestamped mailbox messages applied serially at each barrier in
// (time, source domain, seq) order. Those keys are functions of each
// domain's own deterministic event sequence, so results are byte-identical
// for any worker count (`ScenarioConfig::shards`). A single-cluster
// scenario takes the direct fast path: one loop, no barriers, behavior
// identical to the pre-shard simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "mac/base_station.h"
#include "net/event_loop.h"
#include "net/flow.h"
#include "net/link.h"
#include "net/shard_mailbox.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "pbe/pbe_client.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace pbecc::cap {
class TraceWriter;
class PipelineDigest;
}  // namespace pbecc::cap

namespace pbecc::tel {
class Sampler;
}  // namespace pbecc::tel

namespace pbecc::sim {

struct CellSpec {
  double bandwidth_mhz = 10.0;
  // Control-plane (paging/parameter) users per subframe; ~0.4 on the
  // paper's busy cell, near zero late at night.
  double control_users_per_subframe = 0.05;
  // Use the 36.212 convolutional code on the control channel instead of
  // the (cheaper to simulate) repetition code.
  bool convolutional_pdcch = false;
  // Cell-cluster id. Cells sharing a cluster live in one shard domain
  // (one EventLoop + BaseStation); a UE's serving set must stay inside a
  // single cluster, so carrier aggregation never crosses a shard. Cluster
  // ids need not be contiguous; domains are ordered by ascending id.
  int cluster = 0;

  // --- 5G NR (ignored while nr == false) ---
  // Make this carrier an NR cell: scalable numerology `scs_khz`
  // (15/30/120), PDCCH confined to a CORESET of `coreset_rbs` x
  // `coreset_symbols` (polar-coded unless convolutional_pdcch), and the
  // bandwidth interpreted against the 38.101 PRB tables. `mini_slot`
  // schedules HARQ retransmissions on the 2-slot mini-slot cadence.
  bool nr = false;
  int scs_khz = 30;
  int coreset_rbs = 48;
  int coreset_symbols = 2;
  bool mini_slot = false;
};

struct UeSpec {
  mac::UeId id = 1;
  // Indices into the scenario's cell list; primary first. All cells must
  // belong to one cluster.
  std::vector<std::size_t> cell_indices = {0};
  phy::MobilityTrace trace = phy::MobilityTrace::stationary(-92.0);
  double noise_floor_dbm = -108.0;
  mac::CaConfig ca{};
  // Weight under the cell's fairness policy (ablations, §7).
  double scheduling_weight = 1.0;
  // Alternative serving sets (each single-cluster, primary first) the
  // handover storm rotates through, in addition to `cell_indices`. A set
  // in a *different* cluster turns the storm handover into a cross-shard
  // migration: the UE's queue, HARQ abandon notifications, reordering
  // residue and CA history travel in a mac::UeMigration applied at the
  // next subframe barrier. Empty = classic same-cluster rotation.
  std::vector<std::vector<std::size_t>> serving_sets;
};

struct PathSpec {
  util::Duration one_way_delay = 25 * util::kMillisecond;
  // 0 = unconstrained Internet (wireless is the only bottleneck).
  util::RateBps internet_rate = 0;
  std::int64_t internet_buffer_bytes = 384 * 1024;
  util::Duration jitter = util::kMillisecond;  // wired-segment jitter
};

struct FlowSpec {
  std::string algo = "bbr";  // "pbe", "abc", baselines, or "fixed"
  mac::UeId ue = 1;
  PathSpec path{};
  util::Time start = 50 * util::kMillisecond;
  util::Time stop = util::kNever;
  util::RateBps fixed_rate = 0;  // for algo == "fixed"

  // --- PBE ablation knobs (ignored for other algorithms) ---
  // Disable the control-traffic filter (Ta>1, Pa>4): every decoded RNTI
  // counts toward N in Eqns 1-3.
  bool pbe_control_filter = true;
  // Override the sender's cwnd gain (0 = library default). §7's
  // delay-for-throughput buffering knob.
  double pbe_cwnd_gain = 0;
  // Extra control-channel BER at the monitor (decoder robustness ablation).
  double pbe_monitor_extra_ber = 0;
};

struct BackgroundSpec {
  std::size_t cell_index = 0;
  int n_users = 6;
  double sessions_per_sec = 0.5;
  util::Duration mean_duration = 2 * util::kSecond;
  util::RateBps rate_lo = 2e6;
  util::RateBps rate_hi = 12e6;
  double rssi_mean_dbm = -95.0;
  double rssi_sigma_db = 6.0;
};

// City-scale background load: instead of simulating each background UE
// (O(UEs) heap events per subframe), install a mac::AggregateTraffic
// population on one cell — synthetic sessions that occupy PRBs, emit
// PDCCH DCIs and join the active-user count at O(sessions) per subframe.
struct AggregateBackgroundSpec {
  std::size_t cell_index = 0;
  mac::AggregateTrafficConfig traffic{};
};

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::vector<CellSpec> cells = {{}};
  std::string scheduler = "fair-share";
  // Worker threads stepping shard domains between barriers. 0 = the
  // process-wide default (sim::set_default_shards, itself defaulting to
  // 1). Clamped to the number of domains; purely a parallelism knob —
  // results are byte-identical for any value (the determinism suite
  // gates this across shards {1,2,8}).
  int shards = 0;
  // Chaos: deterministic fault schedule (inactive by default). The fault
  // seed is separate from `seed` so the same traffic can be replayed under
  // different fault schedules and vice versa.
  fault::FaultProfile fault{};
  std::uint64_t fault_seed = 1;
  // Capture taps (pbecc::cap, both unowned, may be null): the first PBE
  // flow added gets its measurement pipeline recorded into `capture`
  // (begin() is called with the client's trace header) and/or its outputs
  // folded into `digest` for record→replay fidelity checks.
  cap::TraceWriter* capture = nullptr;
  cap::PipelineDigest* digest = nullptr;
  // Run telemetry (pbecc::tel, unowned, may be null): the first PBE flow's
  // measurement pipeline drives the sampler's est.*/decode.* series, and a
  // sim-clock event loop samples ground truth, flow, degradation, queue and
  // invariant series on the same cadence. No-op when PBECC_TEL is OFF.
  tel::Sampler* telemetry = nullptr;
};

// Process-wide default for ScenarioConfig::shards == 0 (run_experiment's
// --shards flag sets this). Defaults to 1: multi-cluster scenarios then
// step serially but still through the barrier protocol, so turning
// parallelism on later cannot change results.
void set_default_shards(int n);
int default_shards();

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);

  // Registration (all before run_until).
  void add_ue(const UeSpec& spec);
  int add_flow(const FlowSpec& spec);  // returns flow index
  void add_background(const BackgroundSpec& spec);
  void add_background_aggregate(const AggregateBackgroundSpec& spec);

  // Move a registered UE onto a new serving set (indices into the cell
  // list, primary first, single cluster — possibly a different one).
  // Callable between run_until calls; same-cluster sets degrade to a
  // plain handover, cross-cluster sets perform the full extract/admit
  // migration immediately (the caller is the barrier context).
  void migrate_ue(mac::UeId ue, const std::vector<std::size_t>& cell_indices);

  void run_until(util::Time t);

  // --- Accessors ---
  // Domain 0's loop / base station: the whole scenario for single-cluster
  // configs (every pre-shard call site), the first domain otherwise.
  net::EventLoop& loop() { return domains_.front()->loop; }
  mac::BaseStation& bs() { return *domains_.front()->bs; }
  std::size_t num_domains() const { return domains_.size(); }
  net::EventLoop& domain_loop(std::size_t d) { return domains_.at(d)->loop; }
  mac::BaseStation& domain_bs(std::size_t d) { return *domains_.at(d)->bs; }
  // Domain currently hosting this UE (moves with migrations).
  int ue_domain(mac::UeId ue) const { return ue_records_.at(ue).domain; }
  util::Time now() const { return now_; }
  FlowStats& stats(int flow) { return *flows_.at(static_cast<std::size_t>(flow))->stats; }
  net::FlowSender& sender(int flow) { return *flows_.at(static_cast<std::size_t>(flow))->sender; }
  // Null for non-PBE flows.
  pbe::PbeClient* pbe_client(int flow) {
    return flows_.at(static_cast<std::size_t>(flow))->client.get();
  }
  std::size_t num_flows() const { return flows_.size(); }
  // Null when the scenario's fault profile is inactive.
  const fault::FaultInjector* faults() const { return faults_.get(); }

 private:
  // One shard domain: a cell-cluster's loop, base station and the
  // thread-local trace buffer its step fills between barriers.
  struct Domain {
    int cluster = 0;
    net::EventLoop loop;
    std::vector<std::size_t> cell_idx;  // indices into cfg_.cells
    std::vector<phy::CellConfig> cells;
    std::unique_ptr<mac::BaseStation> bs;
    std::vector<obs::Event> trace_buf;
  };

  // Cross-domain message payload. Ordering (and thus determinism) comes
  // from the ShardMailbox envelope, not from these fields.
  struct ShardMsg {
    enum class Kind : std::uint8_t {
      kPacket,   // downlink packet for a UE hosted in another domain
      kDeliver,  // in-order delivery back to the flow's home receiver
      kMigrate,  // move `ue` onto `new_cells` in `target_domain`
    };
    Kind kind = Kind::kPacket;
    mac::UeId ue = 0;
    net::Packet pkt{};                   // kPacket / kDeliver
    std::vector<std::size_t> new_cells;  // kMigrate: cell indices
    int target_domain = 0;               // kMigrate
  };

  struct FlowCtx {
    FlowSpec spec;
    int domain = 0;
    // Edge state for feedback-delay-spike trace events (one per spike,
    // not per ACK). Per-flow (not a shared map): the ACK path runs on the
    // flow's domain thread during parallel stepping.
    bool in_delay_spike = false;
    std::unique_ptr<net::FlowSender> sender;
    std::unique_ptr<net::FlowReceiver> receiver;
    std::unique_ptr<net::BottleneckLink> bottleneck;
    std::unique_ptr<net::DelayLink> downlink;
    std::unique_ptr<pbe::PbeClient> client;
    std::unique_ptr<FlowStats> stats;
  };

  // A foreground UE's registration plus its mobile state: the domain it
  // currently lives in (mutated only at barriers / between runs, so the
  // parallel phase may read it freely) and the storm rotation counter.
  struct UeRecord {
    UeSpec spec;
    int domain = 0;
    std::size_t rotation = 0;
  };

  // One add_background group: its own forked RNG (session arrivals drawn
  // on the domain thread must not touch the shared registration RNG) and
  // a private flow-id block.
  struct BgGroup {
    BackgroundSpec spec;
    std::vector<mac::UeId> users;
    util::Rng rng;
    int domain = 0;
    std::uint64_t flow_seq = 0;
  };

  // Validated lookup: the single domain every index in `cells` maps to.
  int domain_of(const std::vector<std::size_t>& cells, const char* what) const;
  mac::BaseStation::DeliveryHandler make_delivery_handler(mac::UeId ue);
  // Downlink ingress for `ue` from a flow homed in `home`: direct enqueue
  // when the UE is local, else a kPacket mailbox message for the barrier.
  void route_downlink(mac::UeId ue, net::Packet pkt, int home);
  // In-order delivery for `ue`: direct when the flow's receiver lives in
  // the UE's current domain (or we are in the serial barrier phase), else
  // a kDeliver message.
  void route_delivery(mac::UeId ue, net::Packet pkt);
  void do_migrate(mac::UeId ue, const std::vector<std::size_t>& cell_indices,
                  int target);
  void apply_msg(ShardMsg msg);
  void storm_tick(std::size_t d);
  void start_once();
  par::ThreadPool& shard_pool();

  void schedule_bg_sessions(BgGroup* group);
  // Recurring sim-clock event recording truth/flow/degradation/queue
  // series for the telemetry-attached flow (see attach_telemetry).
  void schedule_telemetry_sampling();
  phy::Rnti rnti_for(mac::UeId ue) const;

  ScenarioConfig cfg_;
  std::vector<phy::CellConfig> cell_cfgs_;
  std::vector<int> cell_domain_;  // cell index -> domain index
  std::vector<std::unique_ptr<Domain>> domains_;
  net::ShardMailbox<ShardMsg> mailbox_;
  util::Rng rng_;
  std::unique_ptr<fault::FaultInjector> faults_;
  std::unique_ptr<par::ThreadPool> pool_;  // lazily sized shard workers
  util::Time now_ = 0;
  // True during the serial barrier phase (and inside migrate_ue): cross-
  // domain deliveries may run directly — every domain clock stands at the
  // barrier time and no worker threads are live.
  bool in_barrier_ = false;

  std::vector<std::unique_ptr<FlowCtx>> flows_;
  // Per UE: receivers indexed by flow id (a device can run several
  // concurrent connections, paper §6.3.4).
  std::map<mac::UeId, std::map<net::FlowId, net::FlowReceiver*>> ue_receivers_;
  std::map<mac::UeId, UeRecord> ue_records_;
  std::map<net::FlowId, int> flow_domain_;  // flow -> home domain
  std::vector<std::unique_ptr<BgGroup>> bg_groups_;
  mac::UeId next_bg_ue_ = 10000;
  std::uint64_t bg_flow_seq_ = 1u << 20;
  bool started_ = false;
  bool capture_attached_ = false;    // taps go to the first PBE flow only
  int telemetry_flow_ = -1;          // flow index telemetry samples, -1 = none
};

}  // namespace pbecc::sim
