// Scenario: assembles end-to-end experiments — content servers behind
// Internet paths, the cellular base station with its component carriers,
// mobile users (optionally with PBE-CC clients attached to their
// receivers), and stochastic background traffic — mirroring the paper's
// testbed (Fig 10) in simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "mac/base_station.h"
#include "net/event_loop.h"
#include "net/flow.h"
#include "net/link.h"
#include "pbe/pbe_client.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace pbecc::cap {
class TraceWriter;
class PipelineDigest;
}  // namespace pbecc::cap

namespace pbecc::tel {
class Sampler;
}  // namespace pbecc::tel

namespace pbecc::sim {

struct CellSpec {
  double bandwidth_mhz = 10.0;
  // Control-plane (paging/parameter) users per subframe; ~0.4 on the
  // paper's busy cell, near zero late at night.
  double control_users_per_subframe = 0.05;
  // Use the 36.212 convolutional code on the control channel instead of
  // the (cheaper to simulate) repetition code.
  bool convolutional_pdcch = false;
};

struct UeSpec {
  mac::UeId id = 1;
  // Indices into the scenario's cell list; primary first.
  std::vector<std::size_t> cell_indices = {0};
  phy::MobilityTrace trace = phy::MobilityTrace::stationary(-92.0);
  double noise_floor_dbm = -108.0;
  mac::CaConfig ca{};
  // Weight under the cell's fairness policy (ablations, §7).
  double scheduling_weight = 1.0;
};

struct PathSpec {
  util::Duration one_way_delay = 25 * util::kMillisecond;
  // 0 = unconstrained Internet (wireless is the only bottleneck).
  util::RateBps internet_rate = 0;
  std::int64_t internet_buffer_bytes = 384 * 1024;
  util::Duration jitter = util::kMillisecond;  // wired-segment jitter
};

struct FlowSpec {
  std::string algo = "bbr";  // "pbe", "abc", baselines, or "fixed"
  mac::UeId ue = 1;
  PathSpec path{};
  util::Time start = 50 * util::kMillisecond;
  util::Time stop = util::kNever;
  util::RateBps fixed_rate = 0;  // for algo == "fixed"

  // --- PBE ablation knobs (ignored for other algorithms) ---
  // Disable the control-traffic filter (Ta>1, Pa>4): every decoded RNTI
  // counts toward N in Eqns 1-3.
  bool pbe_control_filter = true;
  // Override the sender's cwnd gain (0 = library default). §7's
  // delay-for-throughput buffering knob.
  double pbe_cwnd_gain = 0;
  // Extra control-channel BER at the monitor (decoder robustness ablation).
  double pbe_monitor_extra_ber = 0;
};

struct BackgroundSpec {
  std::size_t cell_index = 0;
  int n_users = 6;
  double sessions_per_sec = 0.5;
  util::Duration mean_duration = 2 * util::kSecond;
  util::RateBps rate_lo = 2e6;
  util::RateBps rate_hi = 12e6;
  double rssi_mean_dbm = -95.0;
  double rssi_sigma_db = 6.0;
};

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::vector<CellSpec> cells = {{}};
  std::string scheduler = "fair-share";
  // Chaos: deterministic fault schedule (inactive by default). The fault
  // seed is separate from `seed` so the same traffic can be replayed under
  // different fault schedules and vice versa.
  fault::FaultProfile fault{};
  std::uint64_t fault_seed = 1;
  // Capture taps (pbecc::cap, both unowned, may be null): the first PBE
  // flow added gets its measurement pipeline recorded into `capture`
  // (begin() is called with the client's trace header) and/or its outputs
  // folded into `digest` for record→replay fidelity checks.
  cap::TraceWriter* capture = nullptr;
  cap::PipelineDigest* digest = nullptr;
  // Run telemetry (pbecc::tel, unowned, may be null): the first PBE flow's
  // measurement pipeline drives the sampler's est.*/decode.* series, and a
  // sim-clock event loop samples ground truth, flow, degradation, queue and
  // invariant series on the same cadence. No-op when PBECC_TEL is OFF.
  tel::Sampler* telemetry = nullptr;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);

  // Registration (all before run_until).
  void add_ue(const UeSpec& spec);
  int add_flow(const FlowSpec& spec);  // returns flow index
  void add_background(const BackgroundSpec& spec);

  void run_until(util::Time t);

  // --- Accessors ---
  net::EventLoop& loop() { return loop_; }
  mac::BaseStation& bs() { return *bs_; }
  FlowStats& stats(int flow) { return *flows_.at(static_cast<std::size_t>(flow))->stats; }
  net::FlowSender& sender(int flow) { return *flows_.at(static_cast<std::size_t>(flow))->sender; }
  // Null for non-PBE flows.
  pbe::PbeClient* pbe_client(int flow) {
    return flows_.at(static_cast<std::size_t>(flow))->client.get();
  }
  std::size_t num_flows() const { return flows_.size(); }
  // Null when the scenario's fault profile is inactive.
  const fault::FaultInjector* faults() const { return faults_.get(); }

 private:
  struct FlowCtx {
    FlowSpec spec;
    std::unique_ptr<net::FlowSender> sender;
    std::unique_ptr<net::FlowReceiver> receiver;
    std::unique_ptr<net::BottleneckLink> bottleneck;
    std::unique_ptr<net::DelayLink> downlink;
    std::unique_ptr<pbe::PbeClient> client;
    std::unique_ptr<FlowStats> stats;
  };

  struct BgSession;

  void schedule_bg_sessions(const BackgroundSpec& spec,
                            std::vector<mac::UeId> users);
  // Recurring sim-clock event recording truth/flow/degradation/queue
  // series for the telemetry-attached flow (see attach_telemetry).
  void schedule_telemetry_sampling();
  phy::Rnti rnti_for(mac::UeId ue) const;

  ScenarioConfig cfg_;
  net::EventLoop loop_;
  std::vector<phy::CellConfig> cell_cfgs_;
  std::unique_ptr<mac::BaseStation> bs_;
  util::Rng rng_;
  std::unique_ptr<fault::FaultInjector> faults_;
  // Edge state for feedback-delay-spike trace events (one per spike, not
  // per ACK) and the per-UE handover-storm rotation counters.
  std::map<net::FlowId, bool> in_delay_spike_;
  std::map<mac::UeId, std::size_t> handover_rotation_;

  std::vector<std::unique_ptr<FlowCtx>> flows_;
  // Per UE: receivers indexed by flow id (a device can run several
  // concurrent connections, paper §6.3.4).
  std::map<mac::UeId, std::map<net::FlowId, net::FlowReceiver*>> ue_receivers_;
  std::map<mac::UeId, UeSpec> ue_specs_;
  mac::UeId next_bg_ue_ = 10000;
  std::uint64_t bg_flow_seq_ = 1u << 20;
  bool started_ = false;
  bool capture_attached_ = false;    // taps go to the first PBE flow only
  int telemetry_flow_ = -1;          // flow index telemetry samples, -1 = none
};

}  // namespace pbecc::sim
