// Long-horizon soak harness (DESIGN.md §10).
//
// Figure-length scenarios exercise seconds of sim time; the bug class that
// matters for *continuous* bandwidth tracking — incremental-sum drift,
// unbounded state maps, stale per-cell configuration — only shows up after
// millions of subframes of user churn, RNTI reuse, handover storms and
// carrier reconfiguration. Two drivers cover the two stateful halves of the
// system:
//
//   run_pipeline_soak  — synthetic PDCCH -> Monitor (blind decode, fusion,
//                        tracking) -> CapacityEstimator, with background-
//                        user churn off a recycled RNTI pool, serving-set
//                        rotation + storm windows, periodic carrier
//                        reconfiguration, RTprop window jitter, and a
//                        WindowedMean drift lane compared against an exact
//                        mirror every check interval.
//
//   run_mac_soak       — BaseStation + EventLoop with foreground UEs whose
//                        deliveries are checked for strictly increasing
//                        sequence numbers, background UEs churning through
//                        add_ue/remove_ue with id reuse, and handover
//                        storms; per-UE state-map sizes are bound-checked.
//
// Both drivers run with pbecc::check invariants live (deep checks when the
// build has -DPBECC_CHECK=ON) and report violations plus high-water marks.
// Everything is deterministic per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace pbecc::tel {
class Sampler;
}  // namespace pbecc::tel

namespace pbecc::sim {

struct PipelineSoakConfig {
  std::int64_t subframes = 2'000'000;
  int n_cells = 3;
  std::uint64_t seed = 7;
  // Background users per cell are drawn from (and returned to) a free list
  // of this many RNTIs, so identifiers are aggressively reused.
  int rnti_pool = 24;
  double arrival_per_sf = 0.02;    // bg-user session arrival probability
  double departure_per_sf = 0.003; // per active bg user, per subframe
  std::int64_t reconfig_period_sf = 250'000;  // carrier reconfiguration
  std::int64_t rotate_period_sf = 10'000;     // normal serving-set rotation
  std::int64_t storm_period_sf = 200'000;     // handover-storm windows...
  std::int64_t storm_len_sf = 2'000;          // ...this long, rotating fast
  std::int64_t window_jitter_period_sf = 5'000;  // RTprop window jitter
  std::int64_t check_period_sf = 1'000;       // bound + drift checks
  // Optional run telemetry (unowned, may be null): the soak's monitor +
  // estimator drive the sampler's pipeline half, plus a check.violations
  // series on the same cadence. No-op when PBECC_TEL is OFF.
  tel::Sampler* telemetry = nullptr;
};

struct MacSoakConfig {
  std::int64_t subframes = 200'000;
  std::uint64_t seed = 11;
  int n_cells = 4;
  int fg_ues = 2;
  int bg_ue_pool = 10;            // ids recycled through add_ue/remove_ue
  double churn_per_sf = 0.002;    // bg add/remove attempt probability
  std::int64_t storm_period_sf = 25'000;
  std::int64_t storm_len_sf = 1'000;
  std::int64_t check_period_sf = 1'000;
};

struct SoakReport {
  std::int64_t subframes = 0;

  // pbecc::check totals accumulated during the run.
  std::uint64_t invariant_violations = 0;
  std::string violation_digest;  // "name (file:line) xN, ..." — empty if clean

  // Explicit harness checks that failed (bounded maps, config freshness,
  // delivery ordering, drift). First few failures, human-readable.
  std::vector<std::string> failures;

  // High-water marks — the bounded-state evidence.
  std::size_t max_estimator_cells = 0;
  std::size_t max_tracker_users = 0;
  std::size_t max_tracker_history = 0;
  std::size_t max_ues = 0;
  std::size_t max_ue_cells = 0;

  // WindowedMean drift lane: worst |incremental - exact| relative error
  // observed, where exact is a brute-force mirror of the same stream.
  double max_mean_drift = 0.0;

  // Activity counters (so a "passing" run can be judged non-trivial).
  std::uint64_t decode_attempts = 0;
  std::uint64_t churn_events = 0;
  std::uint64_t handovers = 0;
  std::uint64_t reconfigs = 0;
  std::uint64_t delivered_packets = 0;

  bool ok() const { return invariant_violations == 0 && failures.empty(); }
  // Flat JSON object (CI artifact; merged by bench_soak --metrics).
  std::string to_json() const;
};

SoakReport run_pipeline_soak(const PipelineSoakConfig& cfg);
SoakReport run_mac_soak(const MacSoakConfig& cfg);

}  // namespace pbecc::sim
