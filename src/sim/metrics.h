// Per-flow measurement collection, mirroring the paper's methodology
// (§6.1): per-packet one-way delay, and throughput averaged over
// 100-millisecond windows, from which order statistics are reported.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/stats.h"
#include "util/time.h"

namespace pbecc::sim {

class FlowStats {
 public:
  explicit FlowStats(util::Duration window = 100 * util::kMillisecond)
      : window_(window) {}

  void on_delivery(const net::Packet& pkt, util::Time now);

  // Mark the end of measurement (flushes the last partial window).
  void finish(util::Time now);

  // --- Delay (milliseconds) ---
  // A flow that never delivered a packet has no delay distribution; the
  // accessors return NaN rather than a fake 0 ms (which would read as a
  // perfect link in reports). Check delays_ms().empty() or std::isnan.
  const util::SampleSet& delays_ms() const { return delays_ms_; }
  double avg_delay_ms() const;
  double p95_delay_ms() const;
  double median_delay_ms() const;

  // --- Throughput (Mbit/s), per window and overall ---
  const util::SampleSet& window_tputs_mbps() const { return window_tputs_; }
  double avg_tput_mbps() const;

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }
  util::Time first_delivery() const { return first_; }
  util::Time last_delivery() const { return last_; }

 private:
  void roll_windows(util::Time now);

  util::Duration window_;
  util::SampleSet delays_ms_;
  util::SampleSet window_tputs_;

  util::Time window_start_ = -1;
  std::int64_t window_bytes_ = 0;

  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  util::Time first_ = -1;
  util::Time last_ = -1;
  bool finished_ = false;
};

}  // namespace pbecc::sim
