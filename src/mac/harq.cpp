#include "mac/harq.h"

#include <stdexcept>

#include "check/check.h"

namespace pbecc::mac {

std::optional<std::uint8_t> HarqEntity::free_process() const {
  for (std::uint8_t i = 0; i < kHarqProcesses; ++i) {
    if (!procs_[i].busy) return i;
  }
  return std::nullopt;
}

void HarqEntity::start(std::uint8_t process, TransportBlock tb, std::int64_t sf) {
  PBECC_INVARIANT(process < kHarqProcesses, "harq_process_id_in_range");
  auto& p = procs_[process];
  if (p.busy) throw std::logic_error("HARQ process already busy");
  PBECC_INVARIANT(tb.attempt == 0, "harq_fresh_tb_attempt_zero");
  p.busy = true;
  p.awaiting_retx = false;
  p.retx_sf = sf;  // informational
  p.tb = std::move(tb);
  p.tb.harq_id = process;
}

TransportBlock HarqEntity::complete(std::uint8_t process) {
  auto& p = procs_[process];
  if (!p.busy) throw std::logic_error("completing idle HARQ process");
  p.busy = false;
  p.awaiting_retx = false;
  return std::move(p.tb);
}

bool HarqEntity::fail(std::uint8_t process, std::int64_t sf) {
  PBECC_INVARIANT(process < kHarqProcesses, "harq_process_id_in_range");
  auto& p = procs_[process];
  if (!p.busy) throw std::logic_error("failing idle HARQ process");
  // The retransmission counter can never exceed the cap: fail() stops
  // incrementing at the cap and the process is abandoned instead.
  PBECC_INVARIANT(p.tb.attempt <= kMaxRetransmissions,
                  "harq_attempt_within_cap");
  if (p.tb.attempt >= kMaxRetransmissions) {
    // Out of retransmissions; process stays busy until the caller takes
    // the abandoned block via take_abandoned().
    p.awaiting_retx = false;
    return false;
  }
  ++p.tb.attempt;
  p.awaiting_retx = true;
  p.retx_sf = sf + retx_delay_ticks_;
  return true;
}

std::vector<std::uint8_t> HarqEntity::retx_due(std::int64_t sf) const {
  std::vector<std::uint8_t> due;
  for (std::uint8_t i = 0; i < kHarqProcesses; ++i) {
    if (procs_[i].busy && procs_[i].awaiting_retx && procs_[i].retx_sf <= sf) {
      due.push_back(i);
    }
  }
  return due;
}

const TransportBlock& HarqEntity::block(std::uint8_t process) const {
  if (!procs_[process].busy) throw std::logic_error("idle HARQ process");
  return procs_[process].tb;
}

TransportBlock HarqEntity::take_abandoned(std::uint8_t process) {
  auto& p = procs_[process];
  if (!p.busy) throw std::logic_error("idle HARQ process");
  p.busy = false;
  p.awaiting_retx = false;
  return std::move(p.tb);
}

std::vector<TransportBlock> HarqEntity::abandon_all() {
  std::vector<TransportBlock> dropped;
  for (auto& p : procs_) {
    if (!p.busy) continue;
    p.busy = false;
    p.awaiting_retx = false;
    dropped.push_back(std::move(p.tb));
  }
  return dropped;
}

int HarqEntity::busy_processes() const {
  int n = 0;
  for (const auto& p : procs_) n += p.busy ? 1 : 0;
  return n;
}

}  // namespace pbecc::mac
