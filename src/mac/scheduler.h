// Downlink PRB schedulers.
//
// The paper's fairness results (§6.4) lean on the base station's fairness
// policy: backlogged users share PRBs max-min fairly, and per-user queues
// isolate flows. FairShareScheduler implements exactly that policy;
// ProportionalFair and RoundRobin are provided for ablations (§7 notes
// PBE-CC adapts to arbitrary fairness policies).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mac/types.h"

namespace pbecc::mac {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Distribute up to `available_prbs` among `requests`; each user's
  // allocation never exceeds its demand ceil(backlog*8 / bits_per_prb).
  virtual std::vector<SchedAllocation> allocate(
      int available_prbs, const std::vector<SchedRequest>& requests) = 0;

  virtual std::string name() const = 0;
};

// Max-min fair: equal shares, unused entitlement redistributed to users
// that can use it.
class FairShareScheduler final : public Scheduler {
 public:
  std::vector<SchedAllocation> allocate(
      int available_prbs, const std::vector<SchedRequest>& requests) override;
  std::string name() const override { return "fair-share"; }
};

// Proportional fair: PRBs granted in small resource-block groups to the
// user maximizing instantaneous_rate / smoothed_throughput.
class ProportionalFairScheduler final : public Scheduler {
 public:
  explicit ProportionalFairScheduler(double ewma_alpha = 0.05, int rbg_size = 4)
      : alpha_(ewma_alpha), rbg_size_(rbg_size) {}

  std::vector<SchedAllocation> allocate(
      int available_prbs, const std::vector<SchedRequest>& requests) override;
  std::string name() const override { return "proportional-fair"; }

 private:
  double alpha_;
  int rbg_size_;
  std::map<UeId, double> avg_rate_;  // EWMA of served bits per subframe
};

// Strict round-robin over backlogged users, one user served to completion
// per turn.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::vector<SchedAllocation> allocate(
      int available_prbs, const std::vector<SchedRequest>& requests) override;
  std::string name() const override { return "round-robin"; }

 private:
  UeId next_after_ = 0;
};

// Demand in whole PRBs for a request.
int demand_prbs(const SchedRequest& r);

std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace pbecc::mac
