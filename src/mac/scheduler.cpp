#include "mac/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/profile.h"

namespace pbecc::mac {

int demand_prbs(const SchedRequest& r) {
  if (r.backlog_bytes <= 0) return 0;
  if (r.bits_per_prb <= 0) return 0;
  const double bits = static_cast<double>(r.backlog_bytes) * 8.0;
  return static_cast<int>(std::ceil(bits / r.bits_per_prb));
}

std::vector<SchedAllocation> FairShareScheduler::allocate(
    int available_prbs, const std::vector<SchedRequest>& requests) {
  PBECC_PROF_SCOPE("scheduler_allocate");
  struct Entry {
    std::size_t idx;
    int demand;
    double weight;
    int granted = 0;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const int d = demand_prbs(requests[i]);
    if (d > 0) entries.push_back({i, d, std::max(requests[i].weight, 1e-6)});
  }

  int remaining = available_prbs;
  // Weighted water-filling: repeatedly split the residue across
  // unsatisfied users in proportion to their weights; users whose demand
  // is below their share are capped and their surplus recycled. With all
  // weights equal this is plain max-min fairness.
  bool progress = true;
  while (remaining > 0 && progress) {
    double weight_sum = 0;
    for (const auto& e : entries) {
      if (e.granted < e.demand) weight_sum += e.weight;
    }
    if (weight_sum <= 0) break;
    progress = false;
    bool any_full_share = false;
    const int pool = remaining;  // snapshot: shares computed per round
    for (auto& e : entries) {
      if (e.granted >= e.demand) continue;
      const int share =
          static_cast<int>(static_cast<double>(pool) * e.weight / weight_sum);
      const int give = std::min(e.demand - e.granted, share);
      if (give > 0) {
        e.granted += give;
        remaining -= give;
        progress = true;
        any_full_share = true;
      }
    }
    if (!any_full_share) {
      // Residue smaller than the weight spread: hand out single PRBs to
      // the heaviest unsatisfied users first.
      std::vector<Entry*> order;
      for (auto& e : entries) {
        if (e.granted < e.demand) order.push_back(&e);
      }
      std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
        if (a->weight != b->weight) return a->weight > b->weight;
        return a->idx < b->idx;
      });
      for (auto* e : order) {
        if (remaining == 0) break;
        ++e->granted;
        --remaining;
        progress = true;
      }
      break;
    }
  }

  std::vector<SchedAllocation> out;
  for (const auto& e : entries) {
    if (e.granted > 0) out.push_back({requests[e.idx].ue, e.granted});
  }
  return out;
}

std::vector<SchedAllocation> ProportionalFairScheduler::allocate(
    int available_prbs, const std::vector<SchedRequest>& requests) {
  PBECC_PROF_SCOPE("scheduler_allocate");
  struct Entry {
    const SchedRequest* req;
    int demand;
    int granted = 0;
  };
  std::vector<Entry> entries;
  for (const auto& r : requests) {
    const int d = demand_prbs(r);
    if (d > 0) entries.push_back({&r, d});
  }

  int remaining = available_prbs;
  while (remaining > 0) {
    Entry* best = nullptr;
    double best_metric = -1.0;
    for (auto& e : entries) {
      if (e.granted >= e.demand) continue;
      const double avg = std::max(avg_rate_[e.req->ue], 1.0);
      const double metric = e.req->bits_per_prb / avg;
      if (metric > best_metric) {
        best_metric = metric;
        best = &e;
      }
    }
    if (best == nullptr) break;
    const int give = std::min({rbg_size_, remaining, best->demand - best->granted});
    best->granted += give;
    remaining -= give;
    // Update the EWMA immediately so repeated grants within one subframe
    // rotate across users.
    avg_rate_[best->req->ue] +=
        alpha_ * (static_cast<double>(give) * best->req->bits_per_prb -
                  avg_rate_[best->req->ue]);
  }
  // Users that got nothing still age their average toward zero.
  for (const auto& r : requests) {
    if (avg_rate_.contains(r.ue)) {
      bool granted = false;
      for (const auto& e : entries) {
        if (e.req == &r && e.granted > 0) { granted = true; break; }
      }
      if (!granted) avg_rate_[r.ue] *= (1.0 - alpha_);
    }
  }

  std::vector<SchedAllocation> out;
  for (const auto& e : entries) {
    if (e.granted > 0) out.push_back({e.req->ue, e.granted});
  }
  return out;
}

std::vector<SchedAllocation> RoundRobinScheduler::allocate(
    int available_prbs, const std::vector<SchedRequest>& requests) {
  PBECC_PROF_SCOPE("scheduler_allocate");
  // Serve users in UE-id order starting after the last user served,
  // each to full demand, until PRBs run out.
  std::vector<const SchedRequest*> order;
  for (const auto& r : requests) {
    if (demand_prbs(r) > 0) order.push_back(&r);
  }
  std::sort(order.begin(), order.end(),
            [](const SchedRequest* a, const SchedRequest* b) { return a->ue < b->ue; });
  std::stable_partition(order.begin(), order.end(),
                        [this](const SchedRequest* r) { return r->ue > next_after_; });

  std::vector<SchedAllocation> out;
  int remaining = available_prbs;
  for (const auto* r : order) {
    if (remaining == 0) break;
    const int give = std::min(demand_prbs(*r), remaining);
    out.push_back({r->ue, give});
    remaining -= give;
    next_after_ = r->ue;
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "fair-share") return std::make_unique<FairShareScheduler>();
  if (name == "proportional-fair") return std::make_unique<ProportionalFairScheduler>();
  if (name == "round-robin") return std::make_unique<RoundRobinScheduler>();
  throw std::invalid_argument("unknown scheduler: " + name);
}

}  // namespace pbecc::mac
