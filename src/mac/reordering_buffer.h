// In-order delivery buffer at the mobile (paper §3, Fig 3).
//
// Transport blocks carry a per-UE sequence number assigned at first
// transmission (across all aggregated cells). The mobile holds
// out-of-sequence TBs until the missing one is retransmitted and received,
// which is what converts one HARQ retransmission into an 8 ms delay for
// the erroneous block and 7..0 ms for the blocks behind it. A TB that
// exhausts its retransmissions is skipped (its packets are lost upward).
//
// Real RLC also runs a reordering timer: if the gap at the head of the
// buffer is never filled (the abandon notification itself can be lost in
// a handover or injected fault), the stuck sequence number is skipped
// after `timeout` so delivery never wedges permanently. Duplicate decodes
// of the same sequence (HARQ ACK lost -> spurious retransmission) keep
// the first copy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mac/types.h"
#include "util/time.h"

namespace pbecc::mac {

struct ReorderingBufferConfig {
  // Head-of-line gaps older than this are skipped. The worst legitimate
  // HARQ chain is 3 retransmissions x 8 ms plus delivery, ~32 ms; 60 ms
  // leaves margin without holding traffic hostage for long.
  util::Duration timeout = 60 * util::kMillisecond;
};

class ReorderingBuffer {
 public:
  // Sink for packets released in order.
  using Deliver = std::function<void(net::Packet)>;

  using Config = ReorderingBufferConfig;

  explicit ReorderingBuffer(Deliver deliver, Config cfg = {})
      : deliver_(std::move(deliver)), cfg_(cfg) {}

  // A TB decoded successfully at time `now`.
  void on_tb_decoded(util::Time now, TransportBlock tb);

  // TB `tb_seq` was abandoned by HARQ: skip it and release anything that
  // was waiting behind it.
  void on_tb_abandoned(util::Time now, std::uint64_t tb_seq);

  // Skip head-of-line gaps whose oldest waiting TB has exceeded the
  // timeout. Call periodically (the base station calls it each subframe).
  void expire(util::Time now);

  std::uint64_t next_expected() const { return next_expected_; }
  std::size_t buffered_blocks() const { return buffer_.size(); }
  std::uint64_t expired_skips() const { return expired_skips_; }

  // Value-type snapshot of the buffer for cross-shard UE migration
  // (DESIGN.md §15): the delivery cursor, the skip counter, and every
  // buffered entry — including abandoned tombstones still waiting for
  // their gap to resolve. Dropping this residue at a handover would
  // silently lose the packets queued behind a gap.
  struct SnapshotEntry {
    std::uint64_t tb_seq = 0;
    bool abandoned = false;
    util::Time since = 0;
    std::vector<net::Packet> packets;
  };
  struct Snapshot {
    std::uint64_t next_expected = 0;
    std::uint64_t expired_skips = 0;
    std::vector<SnapshotEntry> entries;  // ascending tb_seq
  };
  Snapshot snapshot() const;
  // Replace this buffer's state with `snap` (migration admit). `since`
  // stamps are preserved so the reordering timer keeps running across the
  // move instead of resetting.
  void restore(Snapshot snap);

 private:
  void drain();
  void check_order() const;

  Deliver deliver_;
  Config cfg_;
  std::uint64_t next_expected_ = 0;
  std::uint64_t expired_skips_ = 0;
  // tb_seq -> completed packets (empty vector for abandoned TBs).
  struct Entry {
    bool abandoned = false;
    util::Time since = 0;  // when this entry started waiting
    std::vector<net::Packet> packets;
  };
  std::map<std::uint64_t, Entry> buffer_;
};

}  // namespace pbecc::mac
