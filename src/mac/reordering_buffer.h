// In-order delivery buffer at the mobile (paper §3, Fig 3).
//
// Transport blocks carry a per-UE sequence number assigned at first
// transmission (across all aggregated cells). The mobile holds
// out-of-sequence TBs until the missing one is retransmitted and received,
// which is what converts one HARQ retransmission into an 8 ms delay for
// the erroneous block and 7..0 ms for the blocks behind it. A TB that
// exhausts its retransmissions is skipped (its packets are lost upward).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mac/types.h"

namespace pbecc::mac {

class ReorderingBuffer {
 public:
  // Sink for packets released in order.
  using Deliver = std::function<void(net::Packet)>;

  explicit ReorderingBuffer(Deliver deliver) : deliver_(std::move(deliver)) {}

  // A TB decoded successfully.
  void on_tb_decoded(TransportBlock tb);

  // TB `tb_seq` was abandoned by HARQ: skip it and release anything that
  // was waiting behind it.
  void on_tb_abandoned(std::uint64_t tb_seq);

  std::uint64_t next_expected() const { return next_expected_; }
  std::size_t buffered_blocks() const { return buffer_.size(); }

 private:
  void drain();

  Deliver deliver_;
  std::uint64_t next_expected_ = 0;
  // tb_seq -> completed packets (empty vector for abandoned TBs).
  struct Entry {
    bool abandoned = false;
    std::vector<net::Packet> packets;
  };
  std::map<std::uint64_t, Entry> buffer_;
};

}  // namespace pbecc::mac
