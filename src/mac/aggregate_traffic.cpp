#include "mac/aggregate_traffic.h"

#include <algorithm>
#include <cmath>

namespace pbecc::mac {

AggregateTraffic::AggregateTraffic(phy::CellId cell, AggregateTrafficConfig cfg)
    : cell_(cell), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.sessions_per_sec > 0) next_arrival_sf_ = 1 + arrival_gap_sf();
}

std::int64_t AggregateTraffic::arrival_gap_sf() {
  const double gap_s = rng_.exponential(1.0 / cfg_.sessions_per_sec);
  return std::max<std::int64_t>(1, std::llround(gap_s * 1000.0));
}

std::vector<AggregateTraffic::Grant> AggregateTraffic::tick(
    std::int64_t sf, int prbs_available, int real_active_users) {
  std::erase_if(sessions_, [&](const Session& s) { return s.end_sf <= sf; });

  while (cfg_.sessions_per_sec > 0 && next_arrival_sf_ <= sf) {
    if (static_cast<int>(sessions_.size()) < cfg_.max_sessions) {
      Session s;
      // Synthetic RNTIs live in a high range well clear of the foreground
      // mapping (0x100 + ue) and control-plane grants; the counter rotates
      // so the tracker sees session churn, as on a real cell.
      s.rnti = static_cast<phy::Rnti>(
          0xC000u + ((static_cast<std::uint32_t>(cell_) & 0xFu) << 8) +
          (rnti_counter_++ & 0xFFu));
      const double rssi = cfg_.rssi_mean_dbm + rng_.normal(0.0, cfg_.rssi_sigma_db);
      s.sinr_db = rssi - cfg_.noise_floor_dbm;
      s.mcs = phy::Mcs{std::max(1, phy::cqi_from_sinr_db(s.sinr_db)),
                       s.sinr_db >= 14.0 ? 2 : 1};
      const double rate = rng_.uniform(cfg_.rate_lo_bps, cfg_.rate_hi_bps);
      s.demand_prbs = std::max(
          1, static_cast<int>(std::ceil((rate / 1000.0) / s.mcs.bits_per_prb())));
      const double dur_s = rng_.exponential(util::to_seconds(cfg_.mean_duration));
      s.end_sf = sf + std::max<std::int64_t>(10, std::llround(dur_s * 1000.0));
      sessions_.push_back(s);
    }
    next_arrival_sf_ += arrival_gap_sf();
  }

  std::vector<Grant> grants;
  if (sessions_.empty() || prbs_available <= 0) return grants;
  // Max-min fair split of the pool across synthetic sessions and real
  // contenders; a session never takes more than its demand, so light
  // sessions return their slack to the real scheduler downstream.
  const int sharers =
      static_cast<int>(sessions_.size()) + std::max(real_active_users, 0);
  const int fair = std::max(1, prbs_available / std::max(sharers, 1));
  int left = prbs_available;
  for (const Session& s : sessions_) {
    if (left <= 0) break;
    const int give = std::min({s.demand_prbs, fair, left});
    if (give <= 0) continue;
    grants.push_back(Grant{s.rnti, give, s.mcs, s.sinr_db});
    left -= give;
  }
  return grants;
}

}  // namespace pbecc::mac
