// The cellular downlink: a base station with one or more component
// carriers, per-UE queues, fair scheduling, HARQ, carrier aggregation and
// a synthetic PDCCH that monitors (the PBE-CC measurement module) can tap.
//
// Per subframe (1 ms), per cell:
//   1. HARQ retransmissions due this subframe reserve PRBs first.
//   2. Control-plane grants (paging / parameter updates) take a few PRBs.
//   3. The scheduler divides the rest among backlogged users max-min
//      fairly; each grant becomes a transport block + a DCI message.
//   4. The control region (PDCCH) is emitted to observers; transport
//      blocks fail with probability 1-(1-p)^L and either deliver one
//      subframe later (through the in-order reordering buffer) or
//      retransmit 8 subframes later, at most 3 times.
//
// NR component carriers run the same loop per *slot*: a cell with
// numerology mu schedules 2^mu times per 1 ms master tick (slot-major
// across cells, so mixed LTE+NR stations interleave in time order), its
// HARQ and decode latencies counted in slots of its own clock. Per-ms
// bookkeeping — channel sampling, CA decisions, explicit rates — is shared
// and stays on the 1 ms master tick.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "mac/aggregate_traffic.h"
#include "mac/carrier_aggregation.h"
#include "mac/control_traffic.h"
#include "mac/harq.h"
#include "mac/reordering_buffer.h"
#include "mac/scheduler.h"
#include "mac/types.h"
#include "net/event_loop.h"
#include "net/packet.h"
#include "phy/channel.h"
#include "phy/pdcch.h"
#include "util/rate.h"

namespace pbecc::mac {

struct UeConfig {
  UeId id = 0;
  phy::Rnti rnti = 0;
  // Primary first; CA activates the rest sequentially.
  std::vector<phy::CellId> aggregated_cells;
  phy::ChannelConfig channel{};
  CaConfig ca{};
  // Scheduling weight under the cell's fairness policy (1.0 = equal share).
  double scheduling_weight = 1.0;
  // Per-user downlink buffer at the base station (the paper notes the BS
  // keeps separate buffers per user, which underpins RTT fairness §4.3).
  // ~1.5 MB is a few hundred ms at typical per-user rates, in line with
  // the bufferbloat levels the paper measures under CUBIC/Verus.
  std::int64_t queue_capacity_bytes = 1536 * 1024;
};

struct BaseStationConfig {
  std::string scheduler = "fair-share";
  ControlTrafficConfig control_traffic{};
  // Fraction of every transport block consumed by RLC/PDCP/MAC headers and
  // periodic control payloads — the paper's gamma = 6.8% (Fig 6a), which
  // its Eqn 5 subtracts when translating physical capacity to goodput.
  double protocol_overhead = 0.068;
  // RLC reordering-timer settings for every UE's in-order delivery buffer.
  ReorderingBuffer::Config reordering{};
  std::uint64_t seed = 42;
};

// Ground-truth per-tick allocation record (what the paper plots in
// Figs 2 and 21 from its decoder; we also expose it directly for tests).
// `sf_index` counts ticks on the cell's own clock — subframes for LTE,
// slots for NR.
struct AllocationRecord {
  phy::CellId cell = 0;
  std::int64_t sf_index = 0;
  std::vector<SchedAllocation> data_allocs;  // real UEs
  int control_prbs = 0;
  int retx_prbs = 0;
  int idle_prbs = 0;
  // PRBs granted to the synthetic aggregate-background sessions (0 unless
  // set_aggregate_traffic was configured for this cell).
  int aggregate_prbs = 0;
};

// Serializable cross-shard handover message (DESIGN.md §15): everything a
// UE must carry when it moves to a base station owned by another shard.
// HARQ blocks do NOT travel — they are abandoned at extraction (real
// inter-site handover without data forwarding), with the abandon
// notifications applied into the reordering buffer *before* the snapshot
// is taken, so nothing is dropped silently. Per-cell channel models are
// rebuilt deterministically at the target from (channel seed, cell id).
struct UeMigration {
  UeConfig cfg;  // aggregated_cells = serving set at extraction
  std::vector<net::Packet> queue;  // downlink queue, head first
  std::int64_t queue_bytes = 0;
  std::int64_t head_bits_sent = 0;
  std::uint64_t next_tb_seq = 0;
  ReorderingBuffer::Snapshot reorder;
  double explicit_rate_bps = 0;
  bool ever_aggregated = false;  // Fig-15 CA history
};

// Simulator-side ground truth for one UE on one of its serving cells: the
// exact quantities PBE-CC's estimator reconstructs from decoded DCI
// (Eqns 1-3), computed from scheduler state instead. Physical bits per
// subframe, no protocol-overhead factor — directly comparable to
// CapacityEstimator::fair_share_capacity / available_capacity, which apply
// overhead later in the RateTranslator. Telemetry samples this to score
// estimate accuracy against what the cell could actually schedule.
struct CellGroundTruth {
  phy::CellId cell = 0;
  int cell_prbs = 0;
  // Users the fair scheduler would currently divide the cell among
  // (backlogged or served within the activity window); >= 1.
  int active_users = 1;
  int idle_prbs = 0;  // last completed subframe
  int own_prbs = 0;   // this UE's PRBs on this cell, last completed subframe
  double bits_per_prb = 0;   // from the UE's current channel sample
  double fair_bits_sf = 0;   // bits_per_prb * cell_prbs / active_users
  double avail_bits_sf = 0;  // bits_per_prb * (own + idle / active_users)
};

class BaseStation {
 public:
  using DeliveryHandler = std::function<void(net::Packet)>;
  using PdcchObserver = std::function<void(const phy::PdcchSubframe&)>;
  using PdcchBatchObserver =
      std::function<void(const std::vector<phy::PdcchSubframe>&)>;
  using AllocationObserver = std::function<void(const AllocationRecord&)>;
  using PacketDropHandler = std::function<void(UeId, const net::Packet&)>;

  BaseStation(net::EventLoop& loop, std::vector<phy::CellConfig> cells,
              BaseStationConfig cfg);

  // Register a user. `deliver` receives packets in order as the mobile's
  // RLC releases them.
  void add_ue(const UeConfig& cfg, DeliveryHandler deliver);

  // Downlink ingress (from the Internet path).
  void enqueue(UeId ue, net::Packet pkt);

  // Monitors (PBE-CC decoders) receive every cell's control region each
  // subframe, before noise — each monitor applies its own channel noise.
  void add_pdcch_observer(PdcchObserver obs) { pdcch_observers_.push_back(std::move(obs)); }
  // Batched variant: one call per tick with every cell's control region,
  // in cell order — lets a monitor blind-decode all cells concurrently
  // (Monitor::on_pdcch_batch) instead of cell-by-cell.
  void add_pdcch_batch_observer(PdcchBatchObserver obs) {
    pdcch_batch_observers_.push_back(std::move(obs));
  }
  void set_allocation_observer(AllocationObserver obs) { alloc_observer_ = std::move(obs); }
  void set_drop_handler(PacketDropHandler h) { drop_handler_ = std::move(h); }

  // Begin ticking subframes on the event loop.
  void start();

  // Hand the UE over to a new aggregated-cell set (new primary first).
  // HARQ state is not transferred between sites: transport blocks still in
  // flight on the old cells are abandoned (their packets are lost upward,
  // exactly the transient a real inter-site handover without data
  // forwarding exhibits). The UE's queue and TB sequence continue. Per-cell
  // state for cells left behind is evicted, so a UE churning through many
  // cells does not accumulate HARQ entities and channel models forever.
  void handover(UeId ue, const std::vector<phy::CellId>& new_cells);

  // Deregister a user (it left the network). In-flight deliveries and
  // HARQ state are dropped; queued downlink packets are discarded. Safe
  // to call between subframes — transmissions already scheduled for the
  // removed UE are skipped when they fire.
  void remove_ue(UeId ue);

  // Detach the UE for migration to another base station (cross-shard
  // handover). In-flight HARQ blocks are abandoned with the notifications
  // applied synchronously into the reordering buffer — the scheduled-
  // callback path used by intra-site handover would find the UE already
  // removed and silently no-op, losing the skip. The returned snapshot
  // carries the queue, the reordering residue, the TB sequence cursor and
  // the CA history; feed it to another station's admit_ue.
  UeMigration extract_ue(UeId ue);

  // Re-register a migrated UE on this station with serving set
  // `new_cells` (new primary first). Channel models and HARQ entities are
  // rebuilt fresh per cell from the UE's channel seed — identical to what
  // an intra-site handover to a never-visited cell produces.
  void admit_ue(UeMigration m, const std::vector<phy::CellId>& new_cells,
                DeliveryHandler deliver);

  // Attach a synthetic aggregate-background load to one of this station's
  // cells (replacing any previous config for it). Call before start().
  void set_aggregate_traffic(phy::CellId cell, AggregateTrafficConfig cfg);

  // --- Introspection (used by tests, benches, and the UE "modem API") ---
  std::int64_t queue_bytes(UeId ue) const;
  const CaManager& ca(UeId ue) const;
  // The UE's own radio measurement for a cell (physically made by the
  // phone; lives here because the channel model is the radio link).
  phy::ChannelState channel_state(UeId ue, phy::CellId cell) const;

  // Explicit network feedback (the ABC / IETF-MTG design point of paper
  // §2): the base station's own estimate of the user's fair-share
  // transport rate across its active cells, smoothed. PBE-CC computes the
  // same quantity from decoded control messages at the endpoint; this
  // oracle exists for head-to-head ablations and as ground truth in tests.
  util::RateBps explicit_rate_bps(UeId ue) const;
  // Unsmoothed per-cell ground truth for a UE's active aggregated cells,
  // in cell-activation order (see CellGroundTruth above).
  std::vector<CellGroundTruth> ground_truth(UeId ue) const;
  const std::vector<phy::CellConfig>& cells() const { return cell_cfgs_; }
  std::int64_t current_subframe() const { return sf_index_; }
  std::uint64_t total_tbs_sent() const { return total_tbs_sent_; }
  std::uint64_t total_tb_errors() const { return total_tb_errors_; }
  std::uint64_t total_tbs_abandoned() const { return total_tbs_abandoned_; }
  // Registered users / per-UE tracked-cell count (soak bound checks: both
  // must stay flat under churn, not grow monotonically).
  std::size_t num_ues() const { return ues_.size(); }
  std::size_t ue_tracked_cells(UeId ue) const;

 private:
  struct UeState {
    UeConfig cfg;
    std::deque<net::Packet> queue;
    std::int64_t queue_bytes = 0;
    std::int64_t head_bits_sent = 0;  // bits of the head packet already sent
    std::uint64_t next_tb_seq = 0;
    std::unique_ptr<ReorderingBuffer> reorder;
    std::map<phy::CellId, HarqEntity> harq;
    std::map<phy::CellId, phy::ChannelModel> channels;
    std::map<phy::CellId, phy::ChannelState> ch_now;  // sampled this subframe
    CaManager ca;
    // PRBs the newest active secondary gave this UE this subframe.
    int newest_secondary_prbs_this_sf = 0;
    // PRBs across all serving cells this subframe (incl. retransmissions).
    int total_prbs_this_sf = 0;
    // Same, split per cell (ground-truth telemetry reads it one subframe
    // behind, after the tick completes).
    std::map<phy::CellId, int> prbs_this_sf_by_cell;
    // Last data grant per cell; drives the explicit-feedback activity set.
    std::map<phy::CellId, util::Time> last_served;
    // Smoothed ABC-style explicit rate (see explicit_rate_bps()).
    double explicit_rate_bps = 0;
  };

  struct CellState {
    phy::CellConfig cfg;
    std::unique_ptr<Scheduler> scheduler;
    ControlTrafficGenerator control;
    // Idle PRBs of the last completed subframe (ground-truth telemetry).
    int last_idle_prbs = 0;
    // Synthetic background load (null unless configured).
    std::unique_ptr<AggregateTraffic> aggregate;
  };

  // Scheduler-visible sharer count per cell (the N of Eqns 1-2).
  std::map<phy::CellId, int> active_user_counts() const;

  void tick();
  // Run one scheduling tick of one cell. `tick_index` counts ticks on the
  // cell's own clock (== sf_index_ for LTE; sf_index_ * spsf + slot for an
  // NR cell with spsf slots per subframe). HARQ, control traffic and the
  // PDCCH all advance per tick; per-ms bookkeeping (channel samples, CA,
  // explicit rates) stays in tick().
  void run_cell(CellState& cell, std::int64_t tick_index);
  void update_explicit_rates();
  // Pop up to `bits` from the UE queue into a TB; returns actual bits taken
  // and fills `completed`.
  double take_bits(UeState& ue, double bits, std::vector<net::Packet>& completed);
  // Sends the block on HARQ process `proc`; `new_tb` present for an initial
  // transmission, absent for a retransmission (block already stored).
  // `tick_index` is the cell-clock tick of the transmission; the block
  // decodes (or schedules its retransmission from) the following tick.
  void transmit_tb(CellState& cell, UeState& ue, std::uint8_t proc,
                   std::optional<TransportBlock> new_tb,
                   std::int64_t tick_index);
  // Fresh HARQ entity for a cell: the mini-slot retransmission delay for NR
  // cells configured with mini_slot_preemption, the classic 8-tick RTT
  // otherwise. Unknown cells get the default.
  HarqEntity make_harq(phy::CellId cell) const;
  std::int64_t backlog_bits(const UeState& ue) const;

  net::EventLoop& loop_;
  BaseStationConfig cfg_;
  std::vector<phy::CellConfig> cell_cfgs_;
  std::vector<CellState> cells_;
  std::map<UeId, UeState> ues_;
  std::map<UeId, DeliveryHandler> delivery_;
  std::vector<PdcchObserver> pdcch_observers_;
  std::vector<PdcchBatchObserver> pdcch_batch_observers_;
  // Control regions built during the current tick, one per cell, handed to
  // the batch observers once every cell has run.
  std::vector<phy::PdcchSubframe> tick_pdcch_;
  AllocationObserver alloc_observer_;
  PacketDropHandler drop_handler_;
  util::Rng rng_;
  std::int64_t sf_index_ = 0;
  bool started_ = false;

  std::uint64_t total_tbs_sent_ = 0;
  std::uint64_t total_tb_errors_ = 0;
  std::uint64_t total_tbs_abandoned_ = 0;
};

}  // namespace pbecc::mac
