#include "mac/base_station.h"

#include <algorithm>
#include <stdexcept>

#include "check/check.h"
#include "obs/obs.h"
#include "phy/error_model.h"
#include "phy/transport_block.h"

namespace pbecc::mac {

BaseStation::BaseStation(net::EventLoop& loop,
                         std::vector<phy::CellConfig> cells,
                         BaseStationConfig cfg)
    : loop_(loop), cfg_(std::move(cfg)), cell_cfgs_(std::move(cells)),
      rng_(cfg_.seed) {
  if (cell_cfgs_.empty()) throw std::invalid_argument("base station needs >=1 cell");
  for (const auto& c : cell_cfgs_) {
    ControlTrafficConfig ctrl_cfg = cfg_.control_traffic;
    ctrl_cfg.seed = rng_.next_u64();
    cells_.push_back(CellState{c, make_scheduler(cfg_.scheduler),
                               ControlTrafficGenerator{ctrl_cfg}});
  }
}

HarqEntity BaseStation::make_harq(phy::CellId cell) const {
  for (const auto& cc : cell_cfgs_) {
    if (cc.id != cell) continue;
    if (cc.rat == phy::Rat::kNr && cc.mini_slot_preemption) {
      return HarqEntity{kMiniSlotRetxTicks};
    }
    break;
  }
  return HarqEntity{};
}

void BaseStation::add_ue(const UeConfig& cfg, DeliveryHandler deliver) {
  if (ues_.contains(cfg.id)) throw std::invalid_argument("duplicate UE id");
  if (cfg.aggregated_cells.empty()) {
    throw std::invalid_argument("UE needs at least one aggregated cell");
  }
  UeState st{
      .cfg = cfg,
      .queue = {},
      .queue_bytes = 0,
      .head_bits_sent = 0,
      .next_tb_seq = 0,
      .reorder = nullptr,
      .harq = {},
      .channels = {},
      .ch_now = {},
      .ca = CaManager{cfg.aggregated_cells, cfg.ca},
      .newest_secondary_prbs_this_sf = 0,
      .total_prbs_this_sf = 0,
      .last_served = {},
      .explicit_rate_bps = 0,
  };
  delivery_[cfg.id] = std::move(deliver);
  const UeId id = cfg.id;
  st.reorder = std::make_unique<ReorderingBuffer>(
      [this, id](net::Packet pkt) { delivery_.at(id)(std::move(pkt)); },
      cfg_.reordering);
  for (phy::CellId c : cfg.aggregated_cells) {
    phy::ChannelConfig chc = cfg.channel;
    // Independent fading per carrier, same mobility trace.
    chc.seed = cfg.channel.seed * 1000003ULL + c;
    st.channels.emplace(c, phy::ChannelModel{chc});
    st.harq.emplace(c, make_harq(c));
  }
  ues_.emplace(id, std::move(st));
}

void BaseStation::enqueue(UeId ue, net::Packet pkt) {
  auto& st = ues_.at(ue);
  if (st.queue_bytes + pkt.bytes > st.cfg.queue_capacity_bytes) {
    if constexpr (obs::kCompiled) {
      static obs::Counter& drops = obs::counter("mac.queue_drops");
      drops.inc();
      obs::emit(obs::EventKind::kQueueDrop, loop_.now(), 0,
                static_cast<std::uint32_t>(ue), pkt.bytes);
    }
    if (drop_handler_) drop_handler_(ue, pkt);
    return;  // per-user buffer overflow: droptail
  }
  pkt.bs_enqueue_time = loop_.now();
  st.queue_bytes += pkt.bytes;
  st.queue.push_back(std::move(pkt));
}

void BaseStation::start() {
  if (started_) return;
  started_ = true;
  loop_.schedule_at(util::subframe_start(sf_index_ + 1) , [this] { tick(); });
}

std::int64_t BaseStation::backlog_bits(const UeState& ue) const {
  return ue.queue_bytes * 8 - ue.head_bits_sent;
}

void BaseStation::tick() {
  PBECC_PROF_SCOPE("bs_tick");
  sf_index_ = util::subframe_index(loop_.now());

  // Sample every UE's channel on every aggregated cell once per subframe,
  // and run the RLC reordering timer.
  for (auto& [id, ue] : ues_) {
    ue.newest_secondary_prbs_this_sf = 0;
    ue.total_prbs_this_sf = 0;
    ue.prbs_this_sf_by_cell.clear();
    ue.reorder->expire(loop_.now());
    for (auto& [cell, model] : ue.channels) {
      ue.ch_now[cell] = model.sample(loop_.now());
    }
  }

  // Run every cell's scheduling ticks for this 1 ms master tick. LTE cells
  // tick once; an NR cell with 2^mu slots per subframe ticks 2^mu times.
  // Slot-major iteration (slot k across all cells, then slot k+1) keeps
  // the emitted control regions in time-ascending order, which downstream
  // fusion relies on to bound its pending set.
  int max_spsf = 1;
  for (const auto& cell : cells_) {
    max_spsf = std::max(max_spsf, cell.cfg.slots_per_subframe());
  }
  tick_pdcch_.clear();
  for (int k = 0; k < max_spsf; ++k) {
    for (auto& cell : cells_) {
      const int spsf = cell.cfg.slots_per_subframe();
      if (k >= spsf) continue;
      run_cell(cell, sf_index_ * spsf + k);
    }
  }
  if (!pdcch_batch_observers_.empty() && !tick_pdcch_.empty()) {
    for (const auto& obs : pdcch_batch_observers_) obs(tick_pdcch_);
  }
  update_explicit_rates();

  // Carrier aggregation updates (take effect next subframe).
  for (auto& [id, ue] : ues_) {
    int serving_capacity = 0;
    for (phy::CellId c : ue.ca.active_cells()) {
      for (const auto& cc : cell_cfgs_) {
        // Capacity per 1 ms master tick: an NR cell schedules its PRB pool
        // once per slot, i.e. slots_per_subframe() times per subframe.
        if (cc.id == c) serving_capacity += cc.n_prbs() * cc.slots_per_subframe();
      }
    }
    const std::size_t active_before = ue.ca.active_cells().size();
    ue.ca.on_subframe(loop_.now(), ue.queue_bytes,
                      ue.newest_secondary_prbs_this_sf, ue.total_prbs_this_sf,
                      serving_capacity);
    if constexpr (obs::kCompiled) {
      const std::size_t active_after = ue.ca.active_cells().size();
      if (active_after != active_before) {
        static obs::Counter& changes = obs::counter("mac.ca_changes");
        changes.inc();
        obs::emit(obs::EventKind::kCaChange, loop_.now(), 0,
                  static_cast<std::uint32_t>(id),
                  static_cast<std::int64_t>(active_after),
                  static_cast<double>(active_before));
      }
    }
  }

  loop_.schedule_at(util::subframe_start(sf_index_ + 1), [this] { tick(); });
}

void BaseStation::run_cell(CellState& cell, std::int64_t tick_index) {
  const int total_prbs = cell.cfg.n_prbs();
  int prbs_left = total_prbs;
  int prb_cursor = 0;
  phy::PdcchBuilder pdcch(cell.cfg, tick_index);
  AllocationRecord record;
  record.cell = cell.cfg.id;
  record.sf_index = tick_index;

  // --- 1. HARQ retransmissions due in this subframe.
  struct PendingTx {
    UeState* ue;
    std::uint8_t harq_id;
    bool is_retx;
    TransportBlock tb;  // only for new TBs; retx uses the stored block
  };
  std::vector<PendingTx> transmissions;

  for (auto& [id, ue] : ues_) {
    auto hit = ue.harq.find(cell.cfg.id);
    if (hit == ue.harq.end()) continue;
    for (std::uint8_t proc : hit->second.retx_due(tick_index)) {
      const TransportBlock& tb = hit->second.block(proc);
      if (tb.n_prbs > prbs_left) continue;  // postponed to next subframe
      phy::Dci dci;
      dci.rnti = ue.cfg.rnti;
      dci.format = tb.mcs.n_streams == 2 ? phy::DciFormat::kFormat2
                                         : phy::DciFormat::kFormat1;
      dci.prb_start = static_cast<std::uint16_t>(prb_cursor);
      dci.n_prbs = static_cast<std::uint16_t>(tb.n_prbs);
      dci.mcs = tb.mcs;
      dci.harq_id = proc;
      dci.new_data = false;  // NDI not toggled: retransmission
      const double sinr = ue.ch_now.at(cell.cfg.id).sinr_db;
      if (!pdcch.add_escalating(dci, phy::aggregation_level_for_sinr(sinr))) continue;
      prbs_left -= tb.n_prbs;
      prb_cursor += tb.n_prbs;
      record.retx_prbs += tb.n_prbs;
      ue.total_prbs_this_sf += tb.n_prbs;
      ue.prbs_this_sf_by_cell[cell.cfg.id] += tb.n_prbs;
      if constexpr (obs::kCompiled) {
        static obs::Counter& retx = obs::counter("mac.harq_retx");
        retx.inc();
        obs::emit(obs::EventKind::kHarqRetx, loop_.now(),
                  static_cast<std::uint16_t>(cell.cfg.id),
                  static_cast<std::uint32_t>(ue.cfg.id), proc, tb.n_prbs);
      }
      transmissions.push_back({&ue, proc, true, {}});
    }
  }

  // --- 2. Control-plane grants. The generator's intensity is per tick, so
  // an NR cell carries proportionally more control traffic per 1 ms —
  // matching its proportionally larger scheduling opportunity count.
  for (const auto& grant : cell.control.tick(tick_index)) {
    if (grant.n_prbs > prbs_left) break;
    phy::Dci dci;
    dci.rnti = grant.rnti;
    dci.format = phy::DciFormat::kFormat1A;
    dci.prb_start = static_cast<std::uint16_t>(prb_cursor);
    dci.n_prbs = static_cast<std::uint16_t>(grant.n_prbs);
    dci.mcs = grant.mcs;
    dci.harq_id = 0;
    dci.new_data = true;
    if (!pdcch.add_escalating(dci, 4)) break;  // robust AL for idle-state users
    prbs_left -= grant.n_prbs;
    prb_cursor += grant.n_prbs;
    record.control_prbs += grant.n_prbs;
  }

  // --- 2b. Aggregated background sessions (synthetic load; O(sessions)
  // per subframe regardless of the notional user population). Each grant
  // appears on the PDCCH like any scheduled user, so monitors fold these
  // sessions into the sharer count N and the PRB occupancy.
  if (cell.aggregate) {
    int real_contenders = 0;
    for (const auto& [id, ue] : ues_) {
      const auto& active = ue.ca.active_cells();
      if (std::find(active.begin(), active.end(), cell.cfg.id) != active.end() &&
          backlog_bits(ue) > 0) {
        ++real_contenders;
      }
    }
    for (const auto& grant :
         cell.aggregate->tick(tick_index, prbs_left, real_contenders)) {
      phy::Dci dci;
      dci.rnti = grant.rnti;
      dci.format = grant.mcs.n_streams == 2 ? phy::DciFormat::kFormat2
                                            : phy::DciFormat::kFormat1;
      dci.prb_start = static_cast<std::uint16_t>(prb_cursor);
      dci.n_prbs = static_cast<std::uint16_t>(grant.n_prbs);
      dci.mcs = grant.mcs;
      dci.harq_id = 0;
      dci.new_data = true;
      if (!pdcch.add_escalating(dci,
                                phy::aggregation_level_for_sinr(grant.sinr_db))) {
        break;  // PDCCH exhausted: remaining sessions skip this subframe
      }
      prbs_left -= grant.n_prbs;
      prb_cursor += grant.n_prbs;
      record.aggregate_prbs += grant.n_prbs;
    }
  }

  // --- 3. New data: scheduler divides the remaining PRBs.
  std::vector<SchedRequest> requests;
  for (auto& [id, ue] : ues_) {
    const auto& active = ue.ca.active_cells();
    if (std::find(active.begin(), active.end(), cell.cfg.id) == active.end()) continue;
    if (backlog_bits(ue) <= 0) continue;
    if (!ue.harq.at(cell.cfg.id).free_process().has_value()) continue;
    const auto& ch = ue.ch_now.at(cell.cfg.id);
    phy::Mcs mcs{ch.cqi, ch.sinr_db >= 14.0 ? 2 : 1};
    requests.push_back(SchedRequest{id, (backlog_bits(ue) + 7) / 8,
                                    mcs.bits_per_prb(),
                                    ue.cfg.scheduling_weight});
  }
  const auto allocs = cell.scheduler->allocate(prbs_left, requests);

  for (const auto& a : allocs) {
    auto& ue = ues_.at(a.ue);
    const auto& ch = ue.ch_now.at(cell.cfg.id);
    phy::Mcs mcs{ch.cqi, ch.sinr_db >= 14.0 ? 2 : 1};
    const auto proc = ue.harq.at(cell.cfg.id).free_process();
    if (!proc) continue;

    phy::Dci dci;
    dci.rnti = ue.cfg.rnti;
    dci.format = mcs.n_streams == 2 ? phy::DciFormat::kFormat2
                                    : phy::DciFormat::kFormat1;
    dci.prb_start = static_cast<std::uint16_t>(prb_cursor);
    dci.n_prbs = static_cast<std::uint16_t>(a.n_prbs);
    dci.mcs = mcs;
    dci.harq_id = *proc;
    dci.new_data = true;
    if (!pdcch.add_escalating(dci, phy::aggregation_level_for_sinr(ch.sinr_db))) {
      continue;  // PDCCH exhausted: user skipped this subframe
    }

    TransportBlock tb;
    tb.tb_seq = ue.next_tb_seq++;
    tb.ue = a.ue;
    tb.cell = cell.cfg.id;
    tb.n_prbs = a.n_prbs;
    tb.mcs = mcs;
    const double capacity_bits =
        phy::transport_block_bits(a.n_prbs, mcs) * (1.0 - cfg_.protocol_overhead);
    const double payload_bits = take_bits(ue, capacity_bits, tb.completed_packets);
    // The TB error model sees the full on-air block, headers included.
    tb.bits = payload_bits / (1.0 - cfg_.protocol_overhead);

    prbs_left -= a.n_prbs;
    prb_cursor += a.n_prbs;
    record.data_allocs.push_back(a);
    ue.total_prbs_this_sf += a.n_prbs;
    ue.prbs_this_sf_by_cell[cell.cfg.id] += a.n_prbs;

    // Track use of the newest secondary for deactivation decisions.
    const auto& active = ue.ca.active_cells();
    if (active.size() > 1 && active.back() == cell.cfg.id) {
      ue.newest_secondary_prbs_this_sf += a.n_prbs;
    }
    ue.last_served[cell.cfg.id] = loop_.now();

    transmissions.push_back({&ue, *proc, false, std::move(tb)});
  }

  record.idle_prbs = prbs_left;
  cell.last_idle_prbs = record.idle_prbs;

  // PRB ledger: every PRB of the carrier is accounted to exactly one of
  // data / control / retransmission / idle, and none is double-booked.
  {
    int data_prbs = 0;
    for (const auto& a : record.data_allocs) data_prbs += a.n_prbs;
    PBECC_INVARIANT(record.idle_prbs >= 0 && record.control_prbs >= 0 &&
                        record.retx_prbs >= 0 && record.aggregate_prbs >= 0,
                    "bs_prb_ledger_nonnegative");
    PBECC_INVARIANT(data_prbs + record.control_prbs + record.retx_prbs +
                            record.aggregate_prbs + record.idle_prbs ==
                        total_prbs,
                    "bs_prb_ledger_balanced");
  }

  if constexpr (obs::kCompiled) {
    // Per-subframe PRB ledger: total = data + control + retx + idle.
    static obs::Counter& total = obs::counter("mac.prbs_total");
    static obs::Counter& idle = obs::counter("mac.prbs_idle");
    static obs::Counter& data = obs::counter("mac.prbs_data");
    static obs::Counter& ctrl = obs::counter("mac.prbs_control");
    static obs::Counter& retx = obs::counter("mac.prbs_retx");
    static obs::Counter& aggr = obs::counter("mac.prbs_aggregate");
    total.inc(total_prbs);
    idle.inc(record.idle_prbs);
    data.inc(total_prbs - record.idle_prbs - record.control_prbs -
             record.retx_prbs - record.aggregate_prbs);
    ctrl.inc(record.control_prbs);
    retx.inc(record.retx_prbs);
    aggr.inc(record.aggregate_prbs);
  }

  // --- 4. Emit the control region to monitors.
  if (!pdcch_observers_.empty() || !pdcch_batch_observers_.empty()) {
    phy::PdcchSubframe sf = std::move(pdcch).build();
    for (const auto& obs : pdcch_observers_) obs(sf);
    if (!pdcch_batch_observers_.empty()) tick_pdcch_.push_back(std::move(sf));
  }
  if (alloc_observer_) alloc_observer_(record);

  // --- 5. Air transmission: draw errors, deliver or schedule HARQ retx.
  for (auto& tx : transmissions) {
    if (tx.is_retx) {
      transmit_tb(cell, *tx.ue, tx.harq_id, std::nullopt, tick_index);
    } else {
      transmit_tb(cell, *tx.ue, tx.harq_id, std::move(tx.tb), tick_index);
    }
  }
}

double BaseStation::take_bits(UeState& ue, double bits,
                              std::vector<net::Packet>& completed) {
  double taken = 0;
  while (bits - taken >= 1.0 && !ue.queue.empty()) {
    const double head_total = static_cast<double>(ue.queue.front().bytes) * 8.0;
    const double head_left = head_total - static_cast<double>(ue.head_bits_sent);
    if (head_left <= bits - taken) {
      taken += head_left;
      const std::int32_t head_bytes = ue.queue.front().bytes;
      completed.push_back(std::move(ue.queue.front()));
      ue.queue.pop_front();
      ue.queue_bytes -= head_bytes;
      ue.head_bits_sent = 0;
    } else {
      ue.head_bits_sent += static_cast<std::int64_t>(bits - taken);
      taken = bits;
    }
  }
  return taken;
}

void BaseStation::transmit_tb(CellState& cell, UeState& ue, std::uint8_t proc,
                              std::optional<TransportBlock> new_tb,
                              std::int64_t tick_index) {
  auto& harq = ue.harq.at(cell.cfg.id);
  if (new_tb.has_value()) {
    harq.start(proc, std::move(*new_tb), tick_index);
  }
  // else: retransmission — the failed block already lives in the entity.

  const TransportBlock& active_tb = harq.block(proc);
  ++total_tbs_sent_;
  if constexpr (obs::kCompiled) {
    static obs::Counter& sent = obs::counter("mac.tbs_sent");
    sent.inc();
  }

  const double p = ue.ch_now.at(cell.cfg.id).data_ber;
  const double tber = phy::tb_error_rate(p, active_tb.bits);
  const bool error = rng_.bernoulli(tber);

  // Decode completes at the end of the transmission tick — one subframe
  // later on LTE, one slot later on NR (the shorter slot is exactly the
  // latency win scalable numerology buys).
  const util::Time decode_time = (tick_index + 1) * cell.cfg.tick();
  if (!error) {
    TransportBlock done = harq.complete(proc);
    loop_.schedule_at(decode_time, [this, ue_id = ue.cfg.id, done = std::move(done)]() mutable {
      // The UE may have been removed between transmission and decode.
      const auto it = ues_.find(ue_id);
      if (it != ues_.end()) it->second.reorder->on_tb_decoded(loop_.now(), std::move(done));
    });
    return;
  }

  ++total_tb_errors_;
  if constexpr (obs::kCompiled) {
    static obs::Counter& errors = obs::counter("mac.tb_errors");
    errors.inc();
  }
  if (!harq.fail(proc, tick_index)) {
    // Retransmissions exhausted: abandon; packets inside are lost.
    ++total_tbs_abandoned_;
    TransportBlock dead = harq.take_abandoned(proc);
    if constexpr (obs::kCompiled) {
      static obs::Counter& abandoned = obs::counter("mac.tbs_abandoned");
      abandoned.inc();
      obs::emit(obs::EventKind::kTbAbandoned, loop_.now(),
                static_cast<std::uint16_t>(cell.cfg.id),
                static_cast<std::uint32_t>(ue.cfg.id),
                static_cast<std::int64_t>(dead.tb_seq));
    }
    loop_.schedule_at(decode_time, [this, ue_id = ue.cfg.id, seq = dead.tb_seq] {
      const auto it = ues_.find(ue_id);
      if (it != ues_.end()) it->second.reorder->on_tb_abandoned(loop_.now(), seq);
    });
  }
}

std::map<phy::CellId, int> BaseStation::active_user_counts() const {
  constexpr util::Duration kActive = 200 * util::kMillisecond;
  const util::Time now = loop_.now();

  // Per cell: how many users would the fair scheduler be dividing among?
  std::map<phy::CellId, int> active_count;
  auto is_active = [&](const UeState& ue, phy::CellId cell) {
    if (ue.queue_bytes > 0) return true;
    const auto it = ue.last_served.find(cell);
    return it != ue.last_served.end() && now - it->second <= kActive;
  };
  for (const auto& [id, ue] : ues_) {
    for (phy::CellId c : ue.ca.active_cells()) {
      if (is_active(ue, c)) ++active_count[c];
    }
  }
  // Synthetic aggregate sessions share the cell exactly like real users.
  for (const auto& cell : cells_) {
    if (cell.aggregate && cell.aggregate->active_sessions() > 0) {
      active_count[cell.cfg.id] += cell.aggregate->active_sessions();
    }
  }
  return active_count;
}

void BaseStation::update_explicit_rates() {
  constexpr util::Duration kActive = 200 * util::kMillisecond;
  const util::Time now = loop_.now();
  const std::map<phy::CellId, int> active_count = active_user_counts();

  auto is_active = [&](const UeState& ue, phy::CellId cell) {
    if (ue.queue_bytes > 0) return true;
    const auto it = ue.last_served.find(cell);
    return it != ue.last_served.end() && now - it->second <= kActive;
  };

  for (auto& [id, ue] : ues_) {
    double bits_per_sf = 0;
    for (phy::CellId c : ue.ca.active_cells()) {
      if (!is_active(ue, c)) continue;
      const auto chit = ue.ch_now.find(c);
      if (chit == ue.ch_now.end()) continue;
      const phy::Mcs mcs{chit->second.cqi, chit->second.sinr_db >= 14.0 ? 2 : 1};
      int prbs = 0;
      for (const auto& cc : cell_cfgs_) {
        // PRB opportunities per 1 ms: the pool times the slot count (1 for
        // LTE, so the pre-NR arithmetic is bit-identical).
        if (cc.id == c) prbs = cc.n_prbs() * cc.slots_per_subframe();
      }
      const auto nit = active_count.find(c);
      const int n = std::max(nit == active_count.end() ? 0 : nit->second, 1);
      bits_per_sf += (static_cast<double>(prbs) / n) * mcs.bits_per_prb() *
                     (1.0 - cfg_.protocol_overhead);
    }
    const double rate = bits_per_sf * 1000.0;  // bits per second
    constexpr double alpha = 0.05;
    ue.explicit_rate_bps += alpha * (rate - ue.explicit_rate_bps);
  }
}

util::RateBps BaseStation::explicit_rate_bps(UeId ue) const {
  return ues_.at(ue).explicit_rate_bps;
}

std::vector<CellGroundTruth> BaseStation::ground_truth(UeId ue_id) const {
  const UeState& ue = ues_.at(ue_id);
  const std::map<phy::CellId, int> active_count = active_user_counts();
  std::vector<CellGroundTruth> out;
  for (phy::CellId c : ue.ca.active_cells()) {
    const auto chit = ue.ch_now.find(c);
    if (chit == ue.ch_now.end()) continue;  // no channel sample yet
    CellGroundTruth gt;
    gt.cell = c;
    int spsf = 1;
    for (const auto& cc : cell_cfgs_) {
      if (cc.id == c) {
        gt.cell_prbs = cc.n_prbs();
        spsf = cc.slots_per_subframe();
      }
    }
    const auto nit = active_count.find(c);
    gt.active_users = std::max(nit == active_count.end() ? 0 : nit->second, 1);
    for (const auto& cs : cells_) {
      if (cs.cfg.id == c) gt.idle_prbs = cs.last_idle_prbs;
    }
    const auto pit = ue.prbs_this_sf_by_cell.find(c);
    gt.own_prbs = pit == ue.prbs_this_sf_by_cell.end() ? 0 : pit->second;
    const phy::Mcs mcs{chit->second.cqi, chit->second.sinr_db >= 14.0 ? 2 : 1};
    gt.bits_per_prb = mcs.bits_per_prb();
    // Bits per 1 ms subframe: own_prbs already accumulates across all of
    // the cell's slots within the master tick; the pool and the (per-slot)
    // idle count scale by the slot count. spsf == 1 for LTE keeps the
    // pre-NR arithmetic bit-identical (integer multiply by 1).
    gt.fair_bits_sf = gt.bits_per_prb *
                      static_cast<double>(spsf * gt.cell_prbs) /
                      static_cast<double>(gt.active_users);
    gt.avail_bits_sf =
        gt.bits_per_prb *
        (static_cast<double>(gt.own_prbs) +
         static_cast<double>(spsf * gt.idle_prbs) /
             static_cast<double>(gt.active_users));
    out.push_back(gt);
  }
  return out;
}

void BaseStation::handover(UeId ue_id, const std::vector<phy::CellId>& new_cells) {
  if (new_cells.empty()) throw std::invalid_argument("handover needs >=1 cell");
  for (phy::CellId c : new_cells) {
    bool known = false;
    for (const auto& cc : cell_cfgs_) known |= cc.id == c;
    if (!known) throw std::invalid_argument("handover to unknown cell");
  }
  auto& ue = ues_.at(ue_id);
  if constexpr (obs::kCompiled) {
    static obs::Counter& handovers = obs::counter("mac.handovers");
    handovers.inc();
    obs::emit(obs::EventKind::kHandover, loop_.now(),
              static_cast<std::uint16_t>(new_cells.front()),
              static_cast<std::uint32_t>(ue_id),
              static_cast<std::int64_t>(new_cells.size()));
  }

  // Abandon in-flight HARQ blocks on the old serving cells (no forwarding).
  for (auto& [cell, harq] : ue.harq) {
    for (TransportBlock& dead : harq.abandon_all()) {
      const auto seq = dead.tb_seq;
      loop_.schedule_at(loop_.now(), [this, ue_id, seq] {
        const auto it = ues_.find(ue_id);
        if (it != ues_.end()) it->second.reorder->on_tb_abandoned(loop_.now(), seq);
      });
      ++total_tbs_abandoned_;
      if constexpr (obs::kCompiled) {
        static obs::Counter& abandoned = obs::counter("mac.tbs_abandoned");
        abandoned.inc();
        obs::emit(obs::EventKind::kTbAbandoned, loop_.now(),
                  static_cast<std::uint16_t>(cell),
                  static_cast<std::uint32_t>(ue_id),
                  static_cast<std::int64_t>(seq));
      }
    }
  }

  // Evict per-cell state for the cells left behind: the HARQ blocks there
  // were just abandoned, and keeping entities/channel models for every
  // cell ever visited would grow without bound under handover churn (a
  // phone on a highway crosses hundreds of cells).
  const auto leaving = [&](const auto& kv) {
    return std::find(new_cells.begin(), new_cells.end(), kv.first) ==
           new_cells.end();
  };
  std::erase_if(ue.harq, leaving);
  std::erase_if(ue.channels, leaving);
  std::erase_if(ue.ch_now, leaving);
  std::erase_if(ue.last_served, leaving);

  // Install the new cell set: fresh HARQ entities and channel models for
  // cells the UE had not tracked before.
  ue.cfg.aggregated_cells = new_cells;
  for (phy::CellId c : new_cells) {
    if (!ue.channels.contains(c)) {
      phy::ChannelConfig chc = ue.cfg.channel;
      chc.seed = ue.cfg.channel.seed * 1000003ULL + c;
      ue.channels.emplace(c, phy::ChannelModel{chc});
    }
    if (!ue.harq.contains(c)) ue.harq.emplace(c, make_harq(c));
  }
  // Replacing the manager resets its timers for the new set, but the
  // Fig-15 "ever aggregated" statistic is history, not timer state — the
  // PR-4 eviction path silently zeroed it on every handover.
  const bool ever_aggregated = ue.ca.ever_aggregated();
  ue.ca = CaManager{new_cells, ue.cfg.ca};
  ue.ca.restore_history(ever_aggregated);
  // After eviction + install the tracked set is exactly the new cell set.
  PBECC_INVARIANT(ue.harq.size() == new_cells.size() &&
                      ue.channels.size() == new_cells.size(),
                  "bs_handover_tracks_exactly_new_cells");
}

UeMigration BaseStation::extract_ue(UeId ue_id) {
  auto& ue = ues_.at(ue_id);

  // Abandon in-flight HARQ blocks, applying the skip notifications into
  // the reordering buffer NOW — the schedule-at-now path intra-site
  // handover uses would fire after this UE is erased and silently no-op,
  // wedging the buffer behind a gap that never resolves (until the
  // reordering timer fires, 60 ms later). Any packets this releases go
  // out through the current delivery handler before the snapshot.
  for (auto& [cell, harq] : ue.harq) {
    for (TransportBlock& dead : harq.abandon_all()) {
      ue.reorder->on_tb_abandoned(loop_.now(), dead.tb_seq);
      ++total_tbs_abandoned_;
      if constexpr (obs::kCompiled) {
        static obs::Counter& abandoned = obs::counter("mac.tbs_abandoned");
        abandoned.inc();
        obs::emit(obs::EventKind::kTbAbandoned, loop_.now(),
                  static_cast<std::uint16_t>(cell),
                  static_cast<std::uint32_t>(ue_id),
                  static_cast<std::int64_t>(dead.tb_seq));
      }
    }
  }

  UeMigration m;
  m.cfg = ue.cfg;
  m.queue.assign(std::make_move_iterator(ue.queue.begin()),
                 std::make_move_iterator(ue.queue.end()));
  m.queue_bytes = ue.queue_bytes;
  m.head_bits_sent = ue.head_bits_sent;
  m.next_tb_seq = ue.next_tb_seq;
  m.reorder = ue.reorder->snapshot();
  m.explicit_rate_bps = ue.explicit_rate_bps;
  m.ever_aggregated = ue.ca.ever_aggregated();

  ues_.erase(ue_id);
  delivery_.erase(ue_id);
  return m;
}

void BaseStation::admit_ue(UeMigration m, const std::vector<phy::CellId>& new_cells,
                           DeliveryHandler deliver) {
  if (new_cells.empty()) throw std::invalid_argument("admit needs >=1 cell");
  for (phy::CellId c : new_cells) {
    bool known = false;
    for (const auto& cc : cell_cfgs_) known |= cc.id == c;
    if (!known) throw std::invalid_argument("admit to unknown cell");
  }
  if (ues_.contains(m.cfg.id)) throw std::invalid_argument("duplicate UE id");

  UeState st{
      .cfg = m.cfg,
      .queue = {},
      .queue_bytes = m.queue_bytes,
      .head_bits_sent = m.head_bits_sent,
      .next_tb_seq = m.next_tb_seq,
      .reorder = nullptr,
      .harq = {},
      .channels = {},
      .ch_now = {},
      .ca = CaManager{new_cells, m.cfg.ca},
      .newest_secondary_prbs_this_sf = 0,
      .total_prbs_this_sf = 0,
      .last_served = {},
      .explicit_rate_bps = m.explicit_rate_bps,
  };
  st.cfg.aggregated_cells = new_cells;
  st.queue.assign(std::make_move_iterator(m.queue.begin()),
                  std::make_move_iterator(m.queue.end()));
  st.ca.restore_history(m.ever_aggregated);
  const UeId id = st.cfg.id;
  delivery_[id] = std::move(deliver);
  st.reorder = std::make_unique<ReorderingBuffer>(
      [this, id](net::Packet pkt) { delivery_.at(id)(std::move(pkt)); },
      cfg_.reordering);
  st.reorder->restore(std::move(m.reorder));
  for (phy::CellId c : new_cells) {
    // Same seed formula as add_ue/handover: the channel a UE sees on a
    // cell is a function of (UE channel seed, cell id) alone, so the
    // fading realization is independent of the path taken to get here.
    phy::ChannelConfig chc = st.cfg.channel;
    chc.seed = st.cfg.channel.seed * 1000003ULL + c;
    st.channels.emplace(c, phy::ChannelModel{chc});
    st.harq.emplace(c, make_harq(c));
  }
  ues_.emplace(id, std::move(st));
}

void BaseStation::set_aggregate_traffic(phy::CellId cell,
                                        AggregateTrafficConfig cfg) {
  for (auto& cs : cells_) {
    if (cs.cfg.id == cell) {
      cs.aggregate = std::make_unique<AggregateTraffic>(cell, cfg);
      return;
    }
  }
  throw std::invalid_argument("set_aggregate_traffic: unknown cell");
}

void BaseStation::remove_ue(UeId ue_id) {
  auto it = ues_.find(ue_id);
  if (it == ues_.end()) return;
  ues_.erase(it);
  delivery_.erase(ue_id);
}

std::size_t BaseStation::ue_tracked_cells(UeId ue) const {
  return ues_.at(ue).harq.size();
}

std::int64_t BaseStation::queue_bytes(UeId ue) const {
  return ues_.at(ue).queue_bytes;
}

const CaManager& BaseStation::ca(UeId ue) const { return ues_.at(ue).ca; }

phy::ChannelState BaseStation::channel_state(UeId ue, phy::CellId cell) const {
  const auto& st = ues_.at(ue);
  const auto it = st.ch_now.find(cell);
  // Before the first subframe tick no sample exists yet; return a neutral
  // default rather than forcing every caller to handle start-of-time.
  if (it == st.ch_now.end()) return phy::ChannelState{};
  return it->second;
}

}  // namespace pbecc::mac
