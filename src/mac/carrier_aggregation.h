// Carrier aggregation manager (paper §3, Fig 2).
//
// Each user has an ordered list of aggregated cells; only the primary is
// always active. The network activates the next cell when the user's
// queue shows it needs more than the active set can deliver ("the cellular
// network activates another cell for a user as long as such a user is
// consuming a large fraction of the bandwidth of the serving cell(s)"),
// and deactivates the newest secondary after it sits unused for a while.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/cell_config.h"
#include "util/time.h"

namespace pbecc::mac {

struct CaConfig {
  // Queue depth that signals the active set is insufficient.
  std::int64_t activation_queue_bytes = 40 * 1024;
  // The paper's footnote 1: buffering is *not* a prerequisite — consuming
  // a large fraction of the serving cells' bandwidth also activates the
  // next carrier. Fraction of serving PRBs this user must hold...
  double activation_utilization = 0.65;
  // ...for this long (smoothed).
  util::Duration utilization_delay = 120 * util::kMillisecond;
  // How long the queue must stay above the threshold before activating.
  util::Duration activation_delay = 60 * util::kMillisecond;
  // Deactivate the newest secondary when the user's mean allocation on it
  // stays below this many PRBs ...
  double deactivation_prb_threshold = 2.0;
  // ... for this long.
  util::Duration deactivation_delay = 500 * util::kMillisecond;
  // Cool-down between consecutive activations (lets the new cell take
  // load before judging whether yet another is needed).
  util::Duration activation_cooldown = 100 * util::kMillisecond;
};

class CaManager {
 public:
  CaManager(std::vector<phy::CellId> aggregated_cells, CaConfig cfg);

  // Active prefix of the aggregated list (primary first).
  const std::vector<phy::CellId>& active_cells() const { return active_; }
  std::size_t num_active() const { return active_.size(); }
  std::size_t num_configured() const { return all_.size(); }

  struct Update {
    bool activated = false;
    bool deactivated = false;
    phy::CellId cell = 0;
  };

  // Called once per subframe with the user's current queue depth, the PRBs
  // the newest active secondary allocated to this user this subframe, the
  // user's total PRBs across serving cells this subframe, and the serving
  // cells' combined PRB capacity.
  Update on_subframe(util::Time now, std::int64_t queue_bytes,
                     int newest_secondary_prbs, int serving_prbs,
                     int serving_capacity_prbs);

  // True if a secondary was ever activated (Fig 15 statistic).
  bool ever_aggregated() const { return ever_aggregated_; }

  // Carry the Fig-15 history across handover/migration: replacing the
  // manager for a new cell set must not erase the fact that CA ever
  // triggered for this user.
  void restore_history(bool ever_aggregated) {
    ever_aggregated_ |= ever_aggregated;
  }

 private:
  std::vector<phy::CellId> all_;
  std::vector<phy::CellId> active_;
  CaConfig cfg_;

  util::Time queue_high_since_ = util::kNever;
  util::Time utilization_high_since_ = util::kNever;
  util::Time secondary_idle_since_ = util::kNever;
  util::Time last_activation_ = -(1LL << 60);
  double secondary_prb_ewma_ = 0.0;
  double utilization_ewma_ = 0.0;
  bool ever_aggregated_ = false;
};

}  // namespace pbecc::mac
