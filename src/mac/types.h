// Shared MAC-layer types: user identity, scheduling requests/allocations,
// and the transport block (the unit the cellular link actually moves).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "phy/cell_config.h"
#include "phy/mcs.h"

namespace pbecc::mac {

using UeId = std::uint32_t;

// One user's scheduling demand in one cell for one subframe.
struct SchedRequest {
  UeId ue = 0;
  std::int64_t backlog_bytes = 0;
  double bits_per_prb = 1.0;  // at this user's current MCS
  // Scheduling weight (paper §7: the fairness policy is the operator's;
  // PBE-CC's control law adapts to whatever equilibrium it produces).
  double weight = 1.0;
};

struct SchedAllocation {
  UeId ue = 0;
  int n_prbs = 0;
};

// A transport block in flight between base station and one UE.
struct TransportBlock {
  std::uint64_t tb_seq = 0;  // per-UE sequence across all aggregated cells
  UeId ue = 0;
  phy::CellId cell = 0;
  int n_prbs = 0;
  phy::Mcs mcs{};
  double bits = 0;
  std::uint8_t harq_id = 0;
  int attempt = 0;  // 0 = initial transmission, 1..3 = HARQ retransmissions

  // Transport packets whose final byte was carried in this TB; delivered
  // upward (through the reordering buffer) when the TB decodes.
  std::vector<net::Packet> completed_packets;
};

}  // namespace pbecc::mac
