#include "mac/carrier_aggregation.h"

#include <stdexcept>

namespace pbecc::mac {

CaManager::CaManager(std::vector<phy::CellId> aggregated_cells, CaConfig cfg)
    : all_(std::move(aggregated_cells)), cfg_(cfg) {
  if (all_.empty()) throw std::invalid_argument("UE needs at least a primary cell");
  active_.push_back(all_.front());
}

CaManager::Update CaManager::on_subframe(util::Time now,
                                         std::int64_t queue_bytes,
                                         int newest_secondary_prbs,
                                         int serving_prbs,
                                         int serving_capacity_prbs) {
  Update u;

  // Smoothed share of the serving cells' bandwidth this user consumes.
  const double util_now =
      serving_capacity_prbs > 0
          ? static_cast<double>(serving_prbs) / serving_capacity_prbs
          : 0.0;
  constexpr double alpha = 0.05;  // ~20 ms smoothing
  utilization_ewma_ += alpha * (util_now - utilization_ewma_);

  // --- Activation: either a sustained deep queue, or the user holding a
  // large fraction of the serving bandwidth for a while (footnote 1 of the
  // paper: buffering is not a prerequisite).
  if (active_.size() < all_.size()) {
    const bool queue_high = queue_bytes >= cfg_.activation_queue_bytes;
    if (queue_high) {
      if (queue_high_since_ == util::kNever) queue_high_since_ = now;
    } else {
      queue_high_since_ = util::kNever;
    }
    const bool util_high = utilization_ewma_ >= cfg_.activation_utilization;
    if (util_high) {
      if (utilization_high_since_ == util::kNever) utilization_high_since_ = now;
    } else {
      utilization_high_since_ = util::kNever;
    }

    const bool queue_trigger = queue_high_since_ != util::kNever &&
                               now - queue_high_since_ >= cfg_.activation_delay;
    const bool util_trigger =
        utilization_high_since_ != util::kNever &&
        now - utilization_high_since_ >= cfg_.utilization_delay;
    if ((queue_trigger || util_trigger) &&
        now - last_activation_ >= cfg_.activation_cooldown) {
      active_.push_back(all_[active_.size()]);
      last_activation_ = now;
      queue_high_since_ = util::kNever;
      utilization_high_since_ = util::kNever;
      utilization_ewma_ = 0.0;  // denominator changed; restart smoothing
      secondary_idle_since_ = util::kNever;
      secondary_prb_ewma_ = cfg_.deactivation_prb_threshold * 4;  // grace
      ever_aggregated_ = true;
      u.activated = true;
      u.cell = active_.back();
      return u;
    }
  }

  // --- Deactivation: newest secondary unused for a while.
  if (active_.size() > 1) {
    constexpr double alpha = 0.02;  // ~50 ms smoothing at 1 kHz updates
    secondary_prb_ewma_ +=
        alpha * (static_cast<double>(newest_secondary_prbs) - secondary_prb_ewma_);
    if (secondary_prb_ewma_ < cfg_.deactivation_prb_threshold) {
      if (secondary_idle_since_ == util::kNever) secondary_idle_since_ = now;
      if (now - secondary_idle_since_ >= cfg_.deactivation_delay) {
        u.deactivated = true;
        u.cell = active_.back();
        active_.pop_back();
        secondary_idle_since_ = util::kNever;
        secondary_prb_ewma_ = 0.0;
      }
    } else {
      secondary_idle_since_ = util::kNever;
    }
  }
  return u;
}

}  // namespace pbecc::mac
