// HARQ (hybrid ARQ) entity: per-user, per-cell stop-and-wait processes.
//
// The paper (§3, Fig 3): an erroneous transport block is retransmitted
// eight subframes (8 ms) after the original transmission, at most three
// times; each retransmission occupies PRBs in its subframe and appears on
// the control channel with the new-data indicator (NDI) unset.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mac/types.h"

namespace pbecc::mac {

inline constexpr int kHarqProcesses = 8;
inline constexpr int kHarqRttSubframes = 8;   // retx happens 8 sf later
inline constexpr int kMaxRetransmissions = 3; // after 3 failed retx, drop
// NR mini-slot preemption (38.214 URLLC-style option): a failed block is
// rescheduled after 2 slots instead of the full 8-tick HARQ RTT, so the
// retransmission preempts new data almost immediately.
inline constexpr int kMiniSlotRetxTicks = 2;

class HarqEntity {
 public:
  // `retx_delay_ticks` is the gap (in ticks of the owning cell's clock)
  // between a failed transmission and its retransmission: the classic
  // 8-tick HARQ RTT by default, kMiniSlotRetxTicks for NR cells running
  // mini-slot preemption.
  explicit HarqEntity(int retx_delay_ticks = kHarqRttSubframes)
      : retx_delay_ticks_(retx_delay_ticks > 0 ? retx_delay_ticks
                                               : kHarqRttSubframes) {}

  // A free process id, or nullopt if all 8 are busy (blocks new TBs,
  // as in a real MAC).
  std::optional<std::uint8_t> free_process() const;

  // Register a newly transmitted TB on `process` at subframe `sf`.
  void start(std::uint8_t process, TransportBlock tb, std::int64_t sf);

  // TB on `process` decoded successfully: frees the process and returns
  // the block for upward delivery.
  TransportBlock complete(std::uint8_t process);

  // TB failed. If retransmissions remain, schedules one for
  // sf + retx_delay_ticks and returns true; otherwise frees the process
  // and returns false (block abandoned — caller delivers a tombstone).
  bool fail(std::uint8_t process, std::int64_t sf);

  int retx_delay_ticks() const { return retx_delay_ticks_; }

  // TBs whose retransmission is due at subframe `sf` (does not free them;
  // the caller re-attempts and then calls complete()/fail()).
  std::vector<std::uint8_t> retx_due(std::int64_t sf) const;

  const TransportBlock& block(std::uint8_t process) const;
  TransportBlock take_abandoned(std::uint8_t process);

  // Abandon every busy process (handover: HARQ state is not transferred
  // between sites). Returns the dropped blocks.
  std::vector<TransportBlock> abandon_all();

  int busy_processes() const;

 private:
  struct Process {
    bool busy = false;
    bool awaiting_retx = false;   // failed, retx scheduled
    std::int64_t retx_sf = 0;
    TransportBlock tb{};
  };
  int retx_delay_ticks_ = kHarqRttSubframes;
  Process procs_[kHarqProcesses];
};

}  // namespace pbecc::mac
