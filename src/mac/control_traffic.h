// Control-plane traffic generator (paper §4.2.1, Fig 7).
//
// Real cells constantly page idle users and push parameter updates: the
// paper measures ~15.8 "active users" per 40 ms on a busy cell, of which
// the vast majority occupy exactly 4 PRBs for exactly 1 subframe. PBE-CC
// must filter those out (threshold Ta > 1, Pa > 4) or its fair-share
// denominator N explodes. This generator reproduces that workload.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/cell_config.h"
#include "phy/mcs.h"
#include "util/rng.h"

namespace pbecc::mac {

struct ControlGrant {
  phy::Rnti rnti = 0;
  int n_prbs = 4;
  phy::Mcs mcs{1, 1};  // control payloads go out at the most robust MCS
};

struct ControlTrafficConfig {
  // Mean number of control-plane users newly served per subframe.
  // 0.4/sf reproduces the paper's ~15.8 users per 40 ms on a busy cell.
  double users_per_subframe = 0.4;
  // Fraction of control users that take the canonical 4 PRBs / 1 subframe.
  double canonical_fraction = 0.9;
  std::uint64_t seed = 7;
};

class ControlTrafficGenerator {
 public:
  explicit ControlTrafficGenerator(ControlTrafficConfig cfg);

  // Control grants to schedule in this subframe.
  std::vector<ControlGrant> tick(std::int64_t sf_index);

 private:
  struct Session {
    phy::Rnti rnti;
    int n_prbs;
    int subframes_left;
  };

  ControlTrafficConfig cfg_;
  util::Rng rng_;
  std::vector<Session> ongoing_;
  std::uint32_t next_rnti_salt_ = 1;
};

}  // namespace pbecc::mac
