#include "mac/control_traffic.h"

#include <algorithm>

namespace pbecc::mac {

ControlTrafficGenerator::ControlTrafficGenerator(ControlTrafficConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

std::vector<ControlGrant> ControlTrafficGenerator::tick(std::int64_t) {
  std::vector<ControlGrant> grants;

  // Continue multi-subframe sessions.
  for (auto& s : ongoing_) {
    grants.push_back({s.rnti, s.n_prbs, phy::Mcs{1, 1}});
    --s.subframes_left;
  }
  std::erase_if(ongoing_, [](const Session& s) { return s.subframes_left <= 0; });

  // Spawn new control users.
  const auto n_new = rng_.poisson(cfg_.users_per_subframe);
  for (std::int64_t i = 0; i < n_new; ++i) {
    // Idle-state users get short-lived random C-RNTIs.
    const auto span = static_cast<std::uint32_t>(phy::kMaxCRnti - phy::kMinCRnti);
    const auto rnti = static_cast<phy::Rnti>(
        phy::kMinCRnti + (rng_.next_u64() + next_rnti_salt_++) % span);

    if (rng_.bernoulli(cfg_.canonical_fraction)) {
      grants.push_back({rnti, 4, phy::Mcs{1, 1}});  // 4 PRBs, 1 subframe
    } else {
      // A minority run slightly longer or wider (RRC reconfigurations).
      Session s;
      s.rnti = rnti;
      s.n_prbs = static_cast<int>(rng_.uniform_int(2, 6));
      s.subframes_left = static_cast<int>(rng_.uniform_int(1, 3));
      grants.push_back({s.rnti, s.n_prbs, phy::Mcs{1, 1}});
      --s.subframes_left;
      if (s.subframes_left > 0) ongoing_.push_back(s);
    }
  }
  return grants;
}

}  // namespace pbecc::mac
