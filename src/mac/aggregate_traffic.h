// Aggregated background-UE load (DESIGN.md §15).
//
// City-scale scenarios need thousands of background users, but a full
// UeState per user (channel model sampled every subframe, HARQ entities,
// reordering buffer, queue) makes every subframe cost O(UEs). Background
// users only matter to the cell under study through two observable
// effects: they occupy PRBs, and their DCI messages raise the sharer
// count N that PBE-CC's estimator divides by (Eqns 1-2; Falkenberg et
// al.'s DCI-based cell-load estimation makes the same observation from
// the monitor side). This module reproduces exactly those effects with a
// synthetic per-cell session population — Poisson arrivals, exponential
// durations, per-session SINR→MCS and rate demand — costing
// O(active sessions) per subframe with a hard cap, independent of the
// notional user population behind it.
//
// Sessions are granted PRBs from the post-control pool at their fair
// share alongside real backlogged users, and each grant is emitted on the
// PDCCH as a normal DCI, so monitors count these users and see the PRB
// occupancy without any real queue, channel model or HARQ machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/cell_config.h"
#include "phy/mcs.h"
#include "util/rng.h"
#include "util/time.h"

namespace pbecc::mac {

struct AggregateTrafficConfig {
  // Poisson arrival rate of synthetic sessions on this cell.
  double sessions_per_sec = 20.0;
  // Session lifetime is exponential with this mean.
  util::Duration mean_duration = 500 * util::kMillisecond;
  // Per-session downlink demand, uniform in [rate_lo, rate_hi].
  double rate_lo_bps = 2e6;
  double rate_hi_bps = 12e6;
  // Per-session radio quality: RSSI ~ N(mean, sigma), SINR over the floor.
  double rssi_mean_dbm = -95.0;
  double rssi_sigma_db = 6.0;
  double noise_floor_dbm = -108.0;
  // Hard cap on concurrently active sessions (bounds per-subframe cost).
  int max_sessions = 64;
  std::uint64_t seed = 1;
};

class AggregateTraffic {
 public:
  struct Grant {
    phy::Rnti rnti = 0;
    int n_prbs = 0;
    phy::Mcs mcs{};
    double sinr_db = 0;  // drives the DCI aggregation level
  };

  AggregateTraffic(phy::CellId cell, AggregateTrafficConfig cfg);

  // Advance to subframe `sf` (expire + spawn sessions) and return this
  // subframe's grants, at most `prbs_available` PRBs total. Sessions split
  // the pool max-min fairly with `real_active_users` real contenders. Must
  // be called every subframe (even with 0 PRBs available) so the session
  // process advances deterministically.
  std::vector<Grant> tick(std::int64_t sf, int prbs_available,
                          int real_active_users);

  // Sessions currently alive — the synthetic contribution to the cell's
  // scheduler-visible sharer count N.
  int active_sessions() const { return static_cast<int>(sessions_.size()); }

 private:
  std::int64_t arrival_gap_sf();

  struct Session {
    phy::Rnti rnti = 0;
    std::int64_t end_sf = 0;
    phy::Mcs mcs{};
    double sinr_db = 0;
    int demand_prbs = 1;  // per-subframe PRBs to sustain the drawn rate
  };

  phy::CellId cell_ = 0;
  AggregateTrafficConfig cfg_;
  util::Rng rng_;
  std::vector<Session> sessions_;
  std::int64_t next_arrival_sf_ = 0;
  std::uint32_t rnti_counter_ = 0;
};

}  // namespace pbecc::mac
