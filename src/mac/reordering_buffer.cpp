#include "mac/reordering_buffer.h"

#include "obs/metrics.h"

namespace pbecc::mac {

void ReorderingBuffer::on_tb_decoded(util::Time now, TransportBlock tb) {
  if (tb.tb_seq < next_expected_) return;       // stale duplicate
  if (buffer_.contains(tb.tb_seq)) return;      // duplicate decode: first wins
  Entry e;
  e.since = now;
  e.packets = std::move(tb.completed_packets);
  buffer_.emplace(tb.tb_seq, std::move(e));
  drain();
}

void ReorderingBuffer::on_tb_abandoned(util::Time now, std::uint64_t tb_seq) {
  if (tb_seq < next_expected_) return;
  auto [it, inserted] = buffer_.try_emplace(tb_seq);
  if (inserted) it->second.since = now;
  it->second.abandoned = true;
  drain();
}

void ReorderingBuffer::expire(util::Time now) {
  // Only a head-of-line gap can be expired: the oldest buffered TB has
  // waited `timeout` for a sequence number that never arrived.
  while (!buffer_.empty() && buffer_.begin()->first != next_expected_ &&
         now - buffer_.begin()->second.since >= cfg_.timeout) {
    next_expected_ = buffer_.begin()->first;
    ++expired_skips_;
    if constexpr (obs::kCompiled) {
      static obs::Counter& skips = obs::counter("mac.reorder_expired_skips");
      skips.inc();
    }
    drain();
  }
}

void ReorderingBuffer::drain() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_expected_) {
    for (auto& pkt : it->second.packets) deliver_(std::move(pkt));
    it = buffer_.erase(it);
    ++next_expected_;
  }
}

}  // namespace pbecc::mac
