#include "mac/reordering_buffer.h"

namespace pbecc::mac {

void ReorderingBuffer::on_tb_decoded(TransportBlock tb) {
  if (tb.tb_seq < next_expected_) return;  // stale duplicate
  Entry e;
  e.packets = std::move(tb.completed_packets);
  buffer_[tb.tb_seq] = std::move(e);
  drain();
}

void ReorderingBuffer::on_tb_abandoned(std::uint64_t tb_seq) {
  if (tb_seq < next_expected_) return;
  buffer_[tb_seq].abandoned = true;
  drain();
}

void ReorderingBuffer::drain() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_expected_) {
    for (auto& pkt : it->second.packets) deliver_(std::move(pkt));
    it = buffer_.erase(it);
    ++next_expected_;
  }
}

}  // namespace pbecc::mac
