#include "mac/reordering_buffer.h"

#include "check/check.h"
#include "obs/metrics.h"

namespace pbecc::mac {

void ReorderingBuffer::on_tb_decoded(util::Time now, TransportBlock tb) {
  if (tb.tb_seq < next_expected_) return;       // stale duplicate
  auto it = buffer_.find(tb.tb_seq);
  if (it != buffer_.end()) {
    // Duplicate decode of a sequence we already hold data for: first copy
    // wins. But a bare abandoned tombstone can race a late successful
    // retransmission — the abandon notification was issued (e.g. at
    // handover) while the final retransmission was still in flight and
    // then decoded. The data exists; rescue it instead of recording a
    // loss.
    if (!it->second.abandoned || !it->second.packets.empty()) return;
    it->second.packets = std::move(tb.completed_packets);
    it->second.abandoned = false;
    drain();
    check_order();
    return;
  }
  Entry e;
  e.since = now;
  e.packets = std::move(tb.completed_packets);
  buffer_.emplace(tb.tb_seq, std::move(e));
  drain();
  check_order();
}

void ReorderingBuffer::on_tb_abandoned(util::Time now, std::uint64_t tb_seq) {
  if (tb_seq < next_expected_) return;
  auto [it, inserted] = buffer_.try_emplace(tb_seq);
  if (inserted) it->second.since = now;
  // A spurious abandon arriving after a successful decode must not discard
  // the decoded data: mark the entry, but drain() delivers any packets it
  // holds regardless of the flag.
  it->second.abandoned = true;
  drain();
  check_order();
}

void ReorderingBuffer::expire(util::Time now) {
  // Only a head-of-line gap can be expired: the oldest buffered TB has
  // waited `timeout` for a sequence number that never arrived.
  while (!buffer_.empty() && buffer_.begin()->first != next_expected_ &&
         now - buffer_.begin()->second.since >= cfg_.timeout) {
    next_expected_ = buffer_.begin()->first;
    ++expired_skips_;
    if constexpr (obs::kCompiled) {
      static obs::Counter& skips = obs::counter("mac.reorder_expired_skips");
      skips.inc();
    }
    drain();
  }
  check_order();
}

ReorderingBuffer::Snapshot ReorderingBuffer::snapshot() const {
  Snapshot snap;
  snap.next_expected = next_expected_;
  snap.expired_skips = expired_skips_;
  snap.entries.reserve(buffer_.size());
  for (const auto& [seq, e] : buffer_) {
    snap.entries.push_back(SnapshotEntry{seq, e.abandoned, e.since, e.packets});
  }
  return snap;
}

void ReorderingBuffer::restore(Snapshot snap) {
  buffer_.clear();
  next_expected_ = snap.next_expected;
  expired_skips_ = snap.expired_skips;
  for (auto& se : snap.entries) {
    Entry e;
    e.abandoned = se.abandoned;
    e.since = se.since;
    e.packets = std::move(se.packets);
    buffer_.emplace(se.tb_seq, std::move(e));
  }
  // A consistent snapshot never holds a deliverable head, but drain anyway
  // so a hand-built snapshot cannot wedge the cursor.
  drain();
  check_order();
}

void ReorderingBuffer::drain() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_expected_) {
    for (auto& pkt : it->second.packets) deliver_(std::move(pkt));
    it = buffer_.erase(it);
    ++next_expected_;
  }
}

void ReorderingBuffer::check_order() const {
  // After every public operation the head of the buffer is strictly ahead
  // of the delivery cursor — an entry at/behind next_expected_ means a
  // drain was missed and delivery has wedged.
  PBECC_INVARIANT(buffer_.empty() || buffer_.begin()->first > next_expected_,
                  "reorder_head_ahead_of_cursor");
  if constexpr (check::kDeep) {
    bool monotone = true;
    std::uint64_t prev = next_expected_;
    for (const auto& [seq, e] : buffer_) {
      monotone = monotone && seq > prev;
      prev = seq;
    }
    PBECC_DEEP_INVARIANT(monotone, "reorder_buffer_strictly_sorted");
  }
}

}  // namespace pbecc::mac
