// Inspection tooling for .tsv.pbt telemetry recordings (DESIGN.md §12).
//
//   telemetry_tool summary FILE            accuracy/dwell/anomaly summary
//   telemetry_tool diff A B [options]      compare two runs series-by-series
//     --mean-rel F       flag |mean delta| > F * |mean(a)| (default 0.01)
//     --warmup-ms N      analysis warmup for summary (default 1000)
//   telemetry_tool report FILE OUT.html [--title T]
//                                          self-contained HTML dashboard
//   telemetry_tool export FILE OUT.{json,csv}
//                                          re-encode as JSON or long CSV
//
// Exit codes: 0 ok; diff exits 1 on a flagged regression (schema mismatch,
// series appearing/vanishing, mean or count drift past threshold); 2 on
// unreadable input or bad usage — so CI can tell "runs differ" from
// "tool failed".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tel/analyze.h"
#include "tel/file.h"
#include "tel/report.h"
#include "tel/series.h"

using namespace pbecc;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: telemetry_tool <command> ...\n"
               "  summary FILE [--warmup-ms N]   accuracy + health summary\n"
               "  diff A B [--mean-rel F]        compare two recordings;\n"
               "                                 exit 1 on regression\n"
               "  report FILE OUT.html [--title T]  HTML dashboard\n"
               "  export FILE OUT.json|OUT.csv   convert the recording\n");
}

bool load(const std::string& path, tel::Recorder* rec) {
  std::string err;
  if (!tel::read_file(path, rec, &err)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::perror(path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "%s: short write\n", path.c_str());
    return false;
  }
  return true;
}

int cmd_summary(int argc, char** argv) {
  if (argc < 1) {
    usage(stderr);
    return 2;
  }
  tel::AnalyzeConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--warmup-ms") && i + 1 < argc) {
      cfg.warmup = std::atoi(argv[++i]) * util::kMillisecond;
    } else {
      std::fprintf(stderr, "summary: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  tel::Recorder rec;
  if (!load(argv[0], &rec)) return 2;
  const auto s = tel::summarize(rec, cfg);
  std::fputs(tel::render_summary_text(s).c_str(), stdout);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  tel::DiffThresholds th;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--mean-rel") && i + 1 < argc) {
      th.mean_rel = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "diff: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  tel::Recorder a, b;
  if (!load(argv[0], &a) || !load(argv[1], &b)) return 2;
  const auto d = tel::diff(a, b, th);
  std::fputs(tel::render_diff_text(d).c_str(), stdout);
  return d.regression() ? 1 : 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  std::string title = argv[0];
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--title") && i + 1 < argc) {
      title = argv[++i];
    } else {
      std::fprintf(stderr, "report: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  tel::Recorder rec;
  if (!load(argv[0], &rec)) return 2;
  const auto s = tel::summarize(rec);
  if (!write_text(argv[1], tel::render_html(rec, s, title))) return 2;
  std::printf("report: %zu series -> %s\n", rec.series().size(), argv[1]);
  return 0;
}

int cmd_export(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  tel::Recorder rec;
  if (!load(argv[0], &rec)) return 2;
  const std::string out = argv[1];
  std::string text;
  if (ends_with(out, ".json")) {
    text = rec.to_json();
  } else if (ends_with(out, ".csv")) {
    text = rec.to_csv();
  } else {
    std::fprintf(stderr, "export: output must end in .json or .csv\n");
    return 2;
  }
  if (!write_text(out, text)) return 2;
  std::printf("export: %llu samples -> %s\n",
              static_cast<unsigned long long>(rec.total_samples()),
              out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(stdout);
    return 0;
  }
  if (cmd == "summary") return cmd_summary(argc - 2, argv + 2);
  if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
  if (cmd == "report") return cmd_report(argc - 2, argv + 2);
  if (cmd == "export") return cmd_export(argc - 2, argv + 2);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  usage(stderr);
  return 2;
}
