// Swiss-army knife for .pbt PDCCH capture traces (DESIGN.md §11):
//
//   trace_tool info FILE            header + stream summary
//   trace_tool stats FILE           per-cell and per-record-kind breakdown
//   trace_tool cut IN OUT FROM TO   extract subframes [FROM, TO] into OUT
//   trace_tool merge OUT IN...      concatenate same-config traces
//   trace_tool verify FILE          strict integrity check (exit 1 on damage)
//
// info/stats tolerate a damaged tail (they report the valid prefix and the
// damage); verify fails closed on any CRC mismatch, truncation or ordering
// violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cap/tools.h"
#include "fault/fault.h"

using namespace pbecc;

namespace {

const char* coding_name(phy::PdcchCoding c) {
  return c == phy::PdcchCoding::kConvolutional ? "convolutional" : "repetition";
}

void print_header(const cap::TraceHeader& h) {
  std::printf("format:      PBT1 v%u\n", cap::kFormatVersion);
  std::printf("own RNTI:    0x%04x\n", h.own_rnti);
  std::printf("monitor:     seed=%llu tracker{window=%lldms, Ta>=%d, Pa>=%.1f}\n",
              static_cast<unsigned long long>(h.monitor_seed),
              static_cast<long long>(h.tracker.window / util::kMillisecond),
              h.tracker.min_active_subframes, h.tracker.min_average_prbs);
  std::printf("fault:       %s\n", h.fault_active ? "active" : "none");
  if (h.fault_active) {
    std::printf("fault seed:  %llu\n",
                static_cast<unsigned long long>(h.fault_seed));
  }
  std::printf("cells:       %zu (primary first)\n", h.cells.size());
  for (const auto& c : h.cells) {
    std::printf("  cell %u: %.1f MHz @ %.1f GHz, %d CCEs, %s PDCCH\n",
                c.id, c.bandwidth_mhz, c.carrier_ghz, c.n_cces(),
                coding_name(c.pdcch_coding));
  }
}

void print_stream(const cap::TraceSummary& s) {
  std::printf("records:     %llu in %llu chunks (%llu batches, %llu window "
              "sets, %llu probes)\n",
              static_cast<unsigned long long>(s.records),
              static_cast<unsigned long long>(s.chunks),
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.window_sets),
              static_cast<unsigned long long>(s.probes));
  if (s.batches > 0) {
    std::printf("subframes:   %lld .. %lld (%.1f s of airtime, %llu "
                "cell-subframes)\n",
                static_cast<long long>(s.first_sf),
                static_cast<long long>(s.last_sf),
                util::to_seconds((s.last_sf - s.first_sf + 1) * util::kSubframe),
                static_cast<unsigned long long>(s.cell_subframes));
  }
  if (s.complete) {
    std::printf("integrity:   complete\n");
  } else {
    std::printf("integrity:   DAMAGED after valid prefix: %s\n",
                s.damage.c_str());
  }
}

int cmd_info(const std::string& path) {
  cap::TraceSummary s;
  std::string err;
  if (!cap::summarize(path, s, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  print_header(s.header);
  print_stream(s);
  return s.complete ? 0 : 1;
}

// Recover the canned-profile name from the header's fault schedule by
// comparing against the registry; a schedule set programmatically that
// matches no canned profile reports as "custom".
std::string fault_profile_name(const cap::TraceHeader& h) {
  if (!h.fault_active) return "none";
  for (const auto& name : fault::profile_names()) {
    const auto p = fault::profile_by_name(name);
    if (p && p->active() && *p == h.fault) return name;
  }
  return "custom";
}

int cmd_stats(const std::string& path) {
  cap::TraceSummary s;
  std::string err;
  if (!cap::summarize(path, s, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  print_stream(s);
  std::printf("fault:       %s", fault_profile_name(s.header).c_str());
  if (s.header.fault_active) {
    std::printf(" (seed %llu)",
                static_cast<unsigned long long>(s.header.fault_seed));
  }
  std::printf("\n");
  for (const auto& [cell, n] : s.cell_counts) {
    const double pct =
        s.cell_subframes > 0
            ? 100.0 * static_cast<double>(n) / static_cast<double>(s.cell_subframes)
            : 0.0;
    std::printf("  cell %u: %llu subframes (%.1f%%)\n", cell,
                static_cast<unsigned long long>(n), pct);
  }
  if (s.window_sets + s.probes > 0) {
    std::printf("timed span:  %.3f s .. %.3f s\n", util::to_seconds(s.first_t),
                util::to_seconds(s.last_t));
  }
  return s.complete ? 0 : 1;
}

int cmd_cut(const std::string& in, const std::string& out, const char* from,
            const char* to) {
  std::string err;
  if (!cap::cut(in, out, std::atoll(from), std::atoll(to), err)) {
    std::fprintf(stderr, "cut: %s\n", err.c_str());
    return 1;
  }
  cap::TraceSummary s;
  if (cap::summarize(out, s, err)) {
    std::printf("cut: %llu records -> %s\n",
                static_cast<unsigned long long>(s.records), out.c_str());
  }
  return 0;
}

int cmd_merge(const std::string& out, std::vector<std::string> inputs) {
  std::string err;
  if (!cap::merge(inputs, out, err)) {
    std::fprintf(stderr, "merge: %s\n", err.c_str());
    return 1;
  }
  cap::TraceSummary s;
  if (cap::summarize(out, s, err)) {
    std::printf("merge: %zu traces, %llu records -> %s\n", inputs.size(),
                static_cast<unsigned long long>(s.records), out.c_str());
  }
  return 0;
}

int cmd_verify(const std::string& path) {
  cap::TraceSummary s;
  std::string err;
  if (!cap::verify(path, s, err)) {
    std::fprintf(stderr, "verify: FAILED: %s\n", err.c_str());
    return 1;
  }
  std::printf("verify: OK — %llu records, %llu chunks, all CRCs clean, "
              "stream ordered\n",
              static_cast<unsigned long long>(s.records),
              static_cast<unsigned long long>(s.chunks));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: trace_tool info FILE\n"
               "       trace_tool stats FILE\n"
               "       trace_tool cut IN OUT FROM_SF TO_SF\n"
               "       trace_tool merge OUT IN1 [IN2 ...]\n"
               "       trace_tool verify FILE\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
  if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
  if (cmd == "cut" && argc == 6) return cmd_cut(argv[2], argv[3], argv[4], argv[5]);
  if (cmd == "merge" && argc >= 4) {
    std::vector<std::string> inputs(argv + 3, argv + argc);
    return cmd_merge(argv[2], std::move(inputs));
  }
  if (cmd == "verify" && argc == 3) return cmd_verify(argv[2]);
  return usage();
}
