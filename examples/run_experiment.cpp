// Pantheon-style experiment runner: the paper evaluates algorithms by
// running each over the same emulated link and recording per-packet
// delays and windowed throughput (§6.1). This tool does the same from the
// command line and can emit machine-readable CSV for plotting.
//
//   run_experiment [options]
//     --algo NAME        pbe|abc|bbr|cubic|copa|verus|sprout|pcc|vivace|
//                        gcc|hybrid|all  (--cc is an alias)
//     --blend-* KNOB     hybrid tuning: --blend-zero-trust,
//                        --blend-full-trust, --blend-deadband,
//                        --blend-hold-ms, --blend-divergence-ratio,
//                        --blend-penalty (see DESIGN.md §13)
//     --location IDX     location profile 0..39 (default 2)
//     --seconds N        flow length (default 12)
//     --seed N           override the location's seed
//     --csv FILE         append one summary row per run to FILE
//     --timeseries FILE  write 100 ms window throughput series to FILE
//     --trace FILE         write the pbecc::obs event timeline as JSONL
//     --chrome-trace FILE  same timeline in Chrome trace_event format
//                          (load via chrome://tracing or ui.perfetto.dev)
//     --metrics FILE       write the counter/gauge/histogram registry as
//                          JSON; also enables the wall-clock profiler so
//                          prof.* histograms (blind decode, Viterbi, ...)
//                          are populated
//     --trace-sample N     keep 1 in N high-frequency events (default 1)
//     --fault-profile P    chaos schedule: none|blackout|flap|feedback-loss|
//                          handover-storm (default none)
//     --fault-seed N       fault schedule seed (default 1); same seed =>
//                          byte-identical fault schedule
//     --threads N          worker threads for the parallel decode path
//                          (default 1; results are identical for any N)
//     --shards N           worker threads stepping shard domains between
//                          subframe barriers in multi-cluster scenarios
//                          (default 1; results are identical for any N;
//                          see DESIGN.md §15)
//     --lanes N            blind-decode candidates per lockstep batch
//                          (1..16, default 8; 1 = scalar path; results are
//                          identical for any N)
//     --conv-pdcch         encode every cell's control channel with the
//                          36.212 convolutional code instead of repetition
//                          coding (exercises the Viterbi hot path; used to
//                          record the bench_replay decode corpus)
//     --nr SCS_KHZ         make the location's secondary carriers 5G NR
//                          cells at this subcarrier spacing (15|30|120 kHz;
//                          the primary stays LTE, so the run exercises
//                          mixed LTE+NR carrier aggregation; DESIGN.md §16)
//     --record FILE.pbt    capture the PBE measurement pipeline (PDCCH
//                          batches, window updates, estimator probes) into
//                          a binary trace; requires --algo pbe
//     --replay FILE.pbt    re-drive the decoder/estimator pipeline from a
//                          recorded trace instead of simulating; mutually
//                          exclusive with --record
//     --telemetry FILE     sample the run into a .tsv.pbt telemetry
//                          recording (estimate vs ground truth, flow state,
//                          decode health; see telemetry_tool). Works for
//                          live --algo pbe runs and for --replay (replay
//                          emits the same est.*/decode.* series)
//     --telemetry-interval MS  sampling cadence in sim-clock ms (default 10)
//     --strict-checks      exit nonzero if any pbecc::check invariant
//                          violations were recorded
//     --help               print this option summary
//
//   ./build/examples/run_experiment --algo all --location 31 --csv out.csv
//   ./build/examples/run_experiment --algo pbe --trace out.jsonl \
//       --metrics metrics.json
//   ./build/examples/run_experiment --algo pbe --record run.pbt
//   ./build/examples/run_experiment --replay run.pbt --threads 8
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cap/replay.h"
#include "cap/taps.h"
#include "cap/trace_reader.h"
#include "cap/trace_writer.h"
#include "check/check.h"
#include "decoder/blind_decoder.h"
#include "fault/fault.h"
#include "nr/numerology.h"
#include "obs/obs.h"
#include "par/thread_pool.h"
#include "sim/algorithms.h"
#include "sim/location.h"
#include "tel/file.h"
#include "tel/sampler.h"

using namespace pbecc;

namespace {

struct Options {
  std::string algo = "pbe";
  int location = 2;
  int seconds = 12;
  std::uint64_t seed = 0;  // 0 = location default
  std::string csv;
  std::string timeseries;
  std::string trace_jsonl;
  std::string trace_chrome;
  std::string metrics_json;
  std::uint32_t trace_sample = 1;
  std::string fault_profile = "none";
  std::uint64_t fault_seed = 1;
  std::string record;  // .pbt capture output
  std::string replay;  // .pbt replay input
  std::string telemetry;  // .tsv.pbt telemetry output
  int telemetry_interval_ms = 10;
  bool conv_pdcch = false;
  int nr_scs_khz = 0;  // 0 = all-LTE; 15/30/120 = NR secondaries
  bool strict_checks = false;
  sim::HybridBlendOverrides blend{};  // --blend-* knobs (hybrid only)
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: run_experiment [options]\n"
               "  --algo NAME        pbe|abc|bbr|cubic|copa|verus|sprout|pcc|"
               "vivace|gcc|hybrid|all (default pbe; --cc is an alias)\n"
               "  --blend-zero-trust X / --blend-full-trust X\n"
               "                     hybrid: confidence endpoints of the\n"
               "                     PHY-weight ramp (defaults 0.35 / 0.80)\n"
               "  --blend-deadband X / --blend-hold-ms MS\n"
               "                     hybrid: committed-weight hysteresis\n"
               "                     (defaults 0.10 / 200)\n"
               "  --blend-divergence-ratio X / --blend-penalty X\n"
               "                     hybrid: cross-check trip ratio and\n"
               "                     confidence penalty (defaults 1.6 / 0.45)\n"
               "  --location IDX     location profile 0..%d (default 2)\n"
               "  --seconds N        flow length (default 12)\n"
               "  --seed N           override the location's seed\n"
               "  --csv FILE         append one summary row per run\n"
               "  --timeseries FILE  100 ms window throughput series\n"
               "  --trace FILE       pbecc::obs event timeline as JSONL\n"
               "  --chrome-trace FILE  same timeline, Chrome trace_event\n"
               "  --metrics FILE     counter/gauge/histogram registry JSON\n"
               "  --trace-sample N   keep 1 in N high-frequency events\n"
               "  --fault-profile P  none|blackout|flap|feedback-loss|"
               "handover-storm\n"
               "  --fault-seed N     fault schedule seed (default 1)\n"
               "  --threads N        decode worker threads (default 1)\n"
               "  --shards N         shard worker threads for multi-cluster\n"
               "                     scenarios (default 1; identical results)\n"
               "  --lanes N          lockstep decode lanes, 1..16 (default 8;\n"
               "                     1 = scalar path; identical results)\n"
               "  --conv-pdcch       convolutional control coding on every\n"
               "                     cell (records a Viterbi decode corpus)\n"
               "  --nr SCS_KHZ       5G NR secondary carriers at 15|30|120\n"
               "                     kHz SCS (primary stays LTE: mixed CA)\n"
               "  --record FILE.pbt  capture the PBE pipeline into a binary\n"
               "                     trace (requires --algo pbe)\n"
               "  --replay FILE.pbt  re-drive the pipeline from a trace; no\n"
               "                     simulation runs (excludes --record)\n"
               "  --telemetry FILE   sample the run into a .tsv.pbt telemetry\n"
               "                     recording (live pbe runs and --replay)\n"
               "  --telemetry-interval MS  sampling cadence, sim-clock ms\n"
               "                     (default 10)\n"
               "  --strict-checks    exit nonzero on any pbecc::check\n"
               "                     invariant violation\n"
               "  --help             this summary\n",
               sim::kNumLocations - 1);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--algo")) {
      o.algo = need("--algo");
    } else if (!std::strcmp(argv[i], "--cc")) {
      o.algo = need("--cc");  // alias: congestion-control vocabulary
    } else if (!std::strcmp(argv[i], "--blend-zero-trust")) {
      o.blend.zero_trust_below = std::atof(need("--blend-zero-trust"));
    } else if (!std::strcmp(argv[i], "--blend-full-trust")) {
      o.blend.full_trust_above = std::atof(need("--blend-full-trust"));
    } else if (!std::strcmp(argv[i], "--blend-deadband")) {
      o.blend.deadband = std::atof(need("--blend-deadband"));
    } else if (!std::strcmp(argv[i], "--blend-hold-ms")) {
      o.blend.hold_ms = std::atof(need("--blend-hold-ms"));
    } else if (!std::strcmp(argv[i], "--blend-divergence-ratio")) {
      o.blend.divergence_ratio = std::atof(need("--blend-divergence-ratio"));
    } else if (!std::strcmp(argv[i], "--blend-penalty")) {
      o.blend.divergence_penalty = std::atof(need("--blend-penalty"));
    } else if (!std::strcmp(argv[i], "--location")) {
      o.location = std::atoi(need("--location"));
    } else if (!std::strcmp(argv[i], "--seconds")) {
      o.seconds = std::atoi(need("--seconds"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
    } else if (!std::strcmp(argv[i], "--csv")) {
      o.csv = need("--csv");
    } else if (!std::strcmp(argv[i], "--timeseries")) {
      o.timeseries = need("--timeseries");
    } else if (!std::strcmp(argv[i], "--trace")) {
      o.trace_jsonl = need("--trace");
    } else if (!std::strcmp(argv[i], "--chrome-trace")) {
      o.trace_chrome = need("--chrome-trace");
    } else if (!std::strcmp(argv[i], "--metrics")) {
      o.metrics_json = need("--metrics");
    } else if (!std::strcmp(argv[i], "--trace-sample")) {
      o.trace_sample = static_cast<std::uint32_t>(std::atoi(need("--trace-sample")));
    } else if (!std::strcmp(argv[i], "--fault-profile")) {
      o.fault_profile = need("--fault-profile");
    } else if (!std::strcmp(argv[i], "--fault-seed")) {
      o.fault_seed = static_cast<std::uint64_t>(std::atoll(need("--fault-seed")));
    } else if (!std::strcmp(argv[i], "--threads")) {
      par::set_default_threads(std::atoi(need("--threads")));
    } else if (!std::strcmp(argv[i], "--shards")) {
      sim::set_default_shards(std::atoi(need("--shards")));
    } else if (!std::strcmp(argv[i], "--lanes")) {
      decoder::set_decode_lanes(std::atoi(need("--lanes")));
    } else if (!std::strcmp(argv[i], "--conv-pdcch")) {
      o.conv_pdcch = true;
    } else if (!std::strcmp(argv[i], "--nr")) {
      o.nr_scs_khz = std::atoi(need("--nr"));
    } else if (!std::strcmp(argv[i], "--record")) {
      o.record = need("--record");
    } else if (!std::strcmp(argv[i], "--replay")) {
      o.replay = need("--replay");
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      o.telemetry = need("--telemetry");
    } else if (!std::strcmp(argv[i], "--telemetry-interval")) {
      o.telemetry_interval_ms = std::atoi(need("--telemetry-interval"));
    } else if (!std::strcmp(argv[i], "--strict-checks")) {
      o.strict_checks = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  if (!o.record.empty() && !o.replay.empty()) {
    std::fprintf(stderr,
                 "--record and --replay are mutually exclusive: a run either "
                 "captures a live simulation or replays an existing trace\n");
    std::exit(2);
  }
  const bool pbe_pipeline = o.algo == "pbe" || o.algo == "hybrid";
  if (!o.record.empty() && !pbe_pipeline) {
    std::fprintf(stderr,
                 "--record captures the PBE measurement pipeline and needs "
                 "--algo pbe or hybrid (got '%s')\n",
                 o.algo.c_str());
    std::exit(2);
  }
  if (!o.telemetry.empty() && o.replay.empty() && !pbe_pipeline) {
    std::fprintf(stderr,
                 "--telemetry samples the PBE measurement pipeline and needs "
                 "--algo pbe or hybrid (got '%s')\n",
                 o.algo.c_str());
    std::exit(2);
  }
  if (o.telemetry_interval_ms < 1) {
    std::fprintf(stderr, "--telemetry-interval must be >= 1 ms\n");
    std::exit(2);
  }
  if (o.location < 0 || o.location >= sim::kNumLocations) {
    std::fprintf(stderr, "location must be 0..%d\n", sim::kNumLocations - 1);
    std::exit(2);
  }
  if (!fault::profile_by_name(o.fault_profile)) {
    std::fprintf(stderr, "unknown fault profile '%s'; known:",
                 o.fault_profile.c_str());
    for (const auto& n : fault::profile_names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  // Every enum-valued flag is validated here, before any work starts, so a
  // misspelled value fails with the list of accepted ones instead of a
  // late throw (or a silent atoi-zero) deep inside the run.
  if (o.algo != "all") {
    bool known = false;
    for (const auto& a : sim::all_algorithms()) known |= (a == o.algo);
    for (const auto& a : sim::extra_algorithms()) known |= (a == o.algo);
    if (!known) {
      std::fprintf(stderr, "unknown algorithm '%s'; known:", o.algo.c_str());
      for (const auto& a : sim::all_algorithms()) {
        std::fprintf(stderr, " %s", a.c_str());
      }
      for (const auto& a : sim::extra_algorithms()) {
        std::fprintf(stderr, " %s", a.c_str());
      }
      std::fprintf(stderr, " all\n");
      std::exit(2);
    }
  }
  if (o.nr_scs_khz != 0 && !nr::valid_scs_khz(o.nr_scs_khz)) {
    std::fprintf(stderr,
                 "unknown --nr subcarrier spacing '%d'; known: 15 30 120\n",
                 o.nr_scs_khz);
    std::exit(2);
  }
  return o;
}

void run_one(const Options& o, const std::string& algo) {
  auto loc = sim::location(o.location);
  if (o.seed != 0) loc.seed = o.seed;
  loc.convolutional_pdcch = o.conv_pdcch;
  if (o.nr_scs_khz != 0) {
    loc.nr_numerology = nr::mu_of(nr::scs_from_khz(o.nr_scs_khz));
  }
  const auto profile = *fault::profile_by_name(o.fault_profile);

  std::unique_ptr<cap::TraceWriter> writer;
  cap::PipelineDigest digest;
  sim::CaptureOptions capture;
  if (!o.record.empty()) {
    writer = std::make_unique<cap::TraceWriter>(o.record);
    capture.writer = writer.get();
    capture.digest = &digest;
  }
  std::unique_ptr<tel::Sampler> telemetry;
  if (!o.telemetry.empty()) {
    if (!tel::kCompiled) {
      std::fprintf(stderr, "warning: built with -DPBECC_TEL=OFF; "
                           "--telemetry output will be empty\n");
    }
    tel::SamplerConfig tcfg;
    tcfg.interval = o.telemetry_interval_ms * util::kMillisecond;
    telemetry = std::make_unique<tel::Sampler>(tcfg);
    telemetry->recorder().set_meta("source", "live");
    telemetry->recorder().set_meta("location", std::to_string(o.location));
    telemetry->recorder().set_meta("fault_profile", o.fault_profile);
    capture.telemetry = telemetry.get();
  }

  const auto r = sim::run_location(loc, algo, o.seconds * util::kSecond,
                                   profile.active() ? &profile : nullptr,
                                   o.fault_seed, capture);

  if (telemetry) {
    std::string err;
    if (!tel::write_file(telemetry->recorder(), o.telemetry, &err)) {
      std::fprintf(stderr, "telemetry write failed: %s\n", err.c_str());
      std::exit(1);
    }
    std::printf("telemetry: %llu samples in %zu series -> %s\n",
                static_cast<unsigned long long>(
                    telemetry->recorder().total_samples()),
                telemetry->recorder().series().size(), o.telemetry.c_str());
  }

  if (writer) {
    if (!writer->close()) {
      std::fprintf(stderr, "record failed: %s\n", writer->error().c_str());
      std::exit(1);
    }
    std::printf("record: %llu records (%llu bytes) -> %s\n",
                static_cast<unsigned long long>(writer->records_written()),
                static_cast<unsigned long long>(writer->bytes_written()),
                o.record.c_str());
    std::printf("digest: obs=0x%016llx probe=0x%016llx\n",
                static_cast<unsigned long long>(digest.observation_digest()),
                static_cast<unsigned long long>(digest.probe_digest()));
  }

  std::printf("%-8s %s  tput %.2f Mbit/s  delay p50 %.1f / avg %.1f / "
              "p95 %.1f ms  CA=%s\n",
              algo.c_str(), loc.describe().c_str(), r.avg_tput_mbps,
              r.median_delay_ms, r.avg_delay_ms, r.p95_delay_ms,
              r.ca_triggered ? "yes" : "no");

  if (!o.csv.empty()) {
    FILE* f = std::fopen(o.csv.c_str(), "a");
    if (!f) {
      std::perror("csv open");
      std::exit(1);
    }
    // Header for new files.
    if (std::ftell(f) == 0) {
      std::fprintf(f, "algo,location,seconds,seed,tput_mbps,delay_p50_ms,"
                      "delay_avg_ms,delay_p95_ms,ca_triggered,"
                      "internet_state_fraction\n");
    }
    std::fprintf(f, "%s,%d,%d,%llu,%.3f,%.2f,%.2f,%.2f,%d,%.4f\n",
                 algo.c_str(), o.location, o.seconds,
                 static_cast<unsigned long long>(loc.seed), r.avg_tput_mbps,
                 r.median_delay_ms, r.avg_delay_ms, r.p95_delay_ms,
                 r.ca_triggered ? 1 : 0, r.internet_state_fraction);
    std::fclose(f);
  }

  if (!o.timeseries.empty()) {
    FILE* f = std::fopen(o.timeseries.c_str(), "a");
    if (!f) {
      std::perror("timeseries open");
      std::exit(1);
    }
    const auto wins = r.window_tputs.samples();
    for (std::size_t i = 0; i < wins.size(); ++i) {
      std::fprintf(f, "%s,%d,%.1f,%.3f\n", algo.c_str(), o.location,
                   0.1 * static_cast<double>(i), wins[i]);
    }
    std::fclose(f);
  }
}

// Replay a .pbt trace through the decoder/estimator pipeline; prints the
// same digest line a recording run does, so record→replay fidelity can be
// checked by comparing the two outputs.
int run_replay(const Options& o) {
  cap::TraceReader reader(o.replay);
  if (!reader.ok()) {
    std::fprintf(stderr, "replay: %s\n", reader.error().c_str());
    return 1;
  }
  cap::PipelineDigest digest;
  cap::ReplayDriver driver(reader.header(), &digest);
  std::unique_ptr<tel::Sampler> telemetry;
  if (!o.telemetry.empty()) {
    if (!tel::kCompiled) {
      std::fprintf(stderr, "warning: built with -DPBECC_TEL=OFF; "
                           "--telemetry output will be empty\n");
    }
    tel::SamplerConfig tcfg;
    tcfg.interval = o.telemetry_interval_ms * util::kMillisecond;
    telemetry = std::make_unique<tel::Sampler>(tcfg);
    telemetry->recorder().set_meta("source", "replay");
    telemetry->recorder().set_meta(
        "interval_us", std::to_string(telemetry->interval()));
    telemetry->pipeline().attach(&driver.monitor(), &driver.estimator());
    driver.set_batch_end_hook([p = &telemetry->pipeline()](std::int64_t sf) {
      p->on_batch_end(sf);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = driver.run(reader);
  const auto t1 = std::chrono::steady_clock::now();
  if (!reader.ok()) {
    std::fprintf(stderr, "replay stopped: %s\n", reader.error().c_str());
    return 1;
  }
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("replay: %llu batches (%llu cell-subframes), %llu window sets, "
              "%llu probes in %.1f ms\n",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.cell_subframes),
              static_cast<unsigned long long>(stats.window_sets),
              static_cast<unsigned long long>(stats.probes), ms);
  std::printf("digest: obs=0x%016llx probe=0x%016llx\n",
              static_cast<unsigned long long>(digest.observation_digest()),
              static_cast<unsigned long long>(digest.probe_digest()));
  if (telemetry) {
    std::string err;
    if (!tel::write_file(telemetry->recorder(), o.telemetry, &err)) {
      std::fprintf(stderr, "telemetry write failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("telemetry: %llu samples in %zu series -> %s\n",
                static_cast<unsigned long long>(
                    telemetry->recorder().total_samples()),
                telemetry->recorder().series().size(), o.telemetry.c_str());
  }
  return 0;
}

// One-line invariant summary at exit; --strict-checks turns violations
// into a nonzero exit code (CI treats the run as failed).
int finish_checks(const Options& o) {
  const std::uint64_t v = check::violations();
  if (v == 0) {
    std::fprintf(stderr, "check: 0 invariant violations\n");
    return 0;
  }
  std::fprintf(stderr, "check: %llu invariant violations (%s)\n",
               static_cast<unsigned long long>(v),
               check::describe_violations().c_str());
  return o.strict_checks ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  sim::set_hybrid_blend_overrides(o.blend);
  if (!o.replay.empty()) {
    const int rc = run_replay(o);
    const int checks = finish_checks(o);
    return rc != 0 ? rc : checks;
  }

  const bool tracing = !o.trace_jsonl.empty() || !o.trace_chrome.empty();
  const bool want_obs = tracing || !o.metrics_json.empty();
  if (want_obs && !obs::kCompiled) {
    std::fprintf(stderr, "warning: built with -DPBECC_TRACE=OFF; "
                         "--trace/--metrics output will be empty\n");
  }
  if (tracing) {
    obs::TraceConfig tc;
    tc.sample_every = std::max<std::uint32_t>(o.trace_sample, 1);
    obs::Trace::instance().start(tc);
  }
  // The profiler feeds prof.* histograms in the metrics report.
  if (!o.metrics_json.empty()) obs::set_profiling(true);

  if (o.algo == "all") {
    for (const auto& a : sim::all_algorithms()) run_one(o, a);
  } else {
    run_one(o, o.algo);
  }

  if (tracing) {
    obs::Trace& tr = obs::Trace::instance();
    tr.stop();
    if (!o.trace_jsonl.empty() && !tr.write_jsonl(o.trace_jsonl)) {
      std::fprintf(stderr, "failed to write %s\n", o.trace_jsonl.c_str());
      return 1;
    }
    if (!o.trace_chrome.empty() && !tr.write_chrome(o.trace_chrome)) {
      std::fprintf(stderr, "failed to write %s\n", o.trace_chrome.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %llu events kept (%llu overwritten, "
                         "%llu sampled out)\n",
                 static_cast<unsigned long long>(tr.size()),
                 static_cast<unsigned long long>(tr.dropped()),
                 static_cast<unsigned long long>(tr.sampled_out()));
  }
  if (!o.metrics_json.empty() &&
      !obs::Registry::instance().write_json(o.metrics_json)) {
    std::fprintf(stderr, "failed to write %s\n", o.metrics_json.c_str());
    return 1;
  }
  return finish_checks(o);
}
