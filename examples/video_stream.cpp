// Video streaming over a busy cell: the application the paper's
// introduction motivates (low latency AND high throughput at the same
// time).
//
// A 4K-ish stream needs 25 Mbit/s sustained; the player keeps a playback
// buffer and stalls when it runs dry. We replay the same busy-cell
// scenario under PBE-CC, BBR and CUBIC and report video-level metrics:
// startup time, rebuffer count/time, and the delay the (interactive)
// viewer would experience.
//
//   ./build/examples/video_stream
#include <cstdio>

#include "sim/scenario.h"

using namespace pbecc;

namespace {

struct VideoMetrics {
  double startup_s = 0;       // time to fill 2 s of buffer
  int rebuffers = 0;          // buffer-empty events
  double rebuffer_time_s = 0; // total stalled time
  double avg_tput_mbps = 0;
  double p95_delay_ms = 0;
};

VideoMetrics play(const std::string& algo) {
  constexpr double kBitrateMbps = 25.0;
  constexpr double kStartupBufferS = 2.0;

  sim::ScenarioConfig cfg;
  cfg.seed = 2026;
  cfg.cells = {{10.0, 0.4}, {10.0, 0.4}};  // busy two-carrier site
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.cell_indices = {0, 1};
  ue.trace = phy::MobilityTrace::stationary(-93.0);
  s.add_ue(ue);
  sim::BackgroundSpec bg;
  bg.n_users = 4;
  bg.sessions_per_sec = 0.6;
  s.add_background(bg);

  sim::FlowSpec fs;
  fs.algo = algo;
  fs.start = 100 * util::kMillisecond;
  fs.stop = 40 * util::kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop);
  s.stats(f).finish(fs.stop);

  // Replay the 100 ms throughput windows through a player model.
  VideoMetrics m;
  m.avg_tput_mbps = s.stats(f).avg_tput_mbps();
  m.p95_delay_ms = s.stats(f).p95_delay_ms();
  double buffer_s = 0;
  bool started = false, stalled = false;
  double t = 0;
  for (double w : s.stats(f).window_tputs_mbps().samples()) {
    t += 0.1;
    buffer_s += 0.1 * (w / kBitrateMbps);  // seconds of video downloaded
    if (!started) {
      if (buffer_s >= kStartupBufferS) {
        started = true;
        m.startup_s = t;
      }
      continue;
    }
    if (stalled) {
      m.rebuffer_time_s += 0.1;
      if (buffer_s >= 1.0) stalled = false;  // resume with 1 s in hand
      continue;
    }
    buffer_s -= 0.1;  // playback consumes real time
    if (buffer_s <= 0) {
      buffer_s = 0;
      stalled = true;
      ++m.rebuffers;
      m.rebuffer_time_s += 0.1;
    }
  }
  return m;
}

}  // namespace

int main() {
  std::printf("25 Mbit/s video on a busy two-carrier cell, 40 s session\n\n");
  std::printf("%-8s %10s %10s %12s %12s %10s\n", "algo", "startup(s)",
              "rebuffers", "stalled(s)", "tput(Mb/s)", "p95-d(ms)");
  for (const std::string algo : {"pbe", "bbr", "cubic"}) {
    const auto m = play(algo);
    std::printf("%-8s %10.1f %10d %12.1f %12.1f %10.1f\n", algo.c_str(),
                m.startup_s, m.rebuffers, m.rebuffer_time_s, m.avg_tput_mbps,
                m.p95_delay_ms);
  }
  std::printf("\nPBE-CC sustains the bitrate like BBR but its p95 delay stays\n"
              "near the propagation floor — the viewer could video-call at the\n"
              "same time, which the bufferbloated alternatives rule out.\n");
  return 0;
}
