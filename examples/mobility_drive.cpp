// Drive-test example: run PBE-CC (or any algorithm) along a custom
// signal-strength trajectory and watch it track the capacity.
//
//   ./build/examples/mobility_drive [algo] [start_dbm] [end_dbm] [seconds]
//   e.g. ./build/examples/mobility_drive pbe -85 -107 20
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  const std::string algo = argc > 1 ? argv[1] : "pbe";
  const double start_dbm = argc > 2 ? std::atof(argv[2]) : -85.0;
  const double end_dbm = argc > 3 ? std::atof(argv[3]) : -105.0;
  const int seconds = argc > 4 ? std::atoi(argv[4]) : 20;

  sim::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
  sim::Scenario s{cfg};

  sim::UeSpec ue;
  ue.cell_indices = {0, 1};
  // Linear walk from start to end signal strength over the whole run.
  ue.trace = phy::MobilityTrace(
      {{0, start_dbm}, {seconds * util::kSecond, end_dbm}});
  s.add_ue(ue);

  sim::FlowSpec fs;
  fs.algo = algo;
  fs.start = 100 * util::kMillisecond;
  fs.stop = seconds * util::kSecond;
  const int f = s.add_flow(fs);

  std::printf("%s from %.0f dBm to %.0f dBm over %d s\n\n", algo.c_str(),
              start_dbm, end_dbm, seconds);
  std::printf("t(s)  rssi(dBm)  cqi  tput-1s(Mb/s)  inflight(KB)  carriers\n");
  std::uint64_t last_bytes = 0;
  for (int sec = 1; sec <= seconds; ++sec) {
    s.run_until(sec * util::kSecond);
    const auto ch = s.bs().channel_state(1, 1);
    const auto bytes = s.stats(f).bytes();
    std::printf("%4d  %9.1f  %3d  %13.1f  %12.1f  %zu\n", sec, ch.rssi_dbm,
                ch.cqi, static_cast<double>(bytes - last_bytes) * 8.0 / 1e6,
                s.sender(f).bytes_in_flight() / 1024.0,
                s.bs().ca(1).num_active());
    last_bytes = bytes;
  }
  s.stats(f).finish(fs.stop);
  std::printf("\ntotals: %.1f Mbit/s avg, delay p50 %.1f ms / p95 %.1f ms\n",
              s.stats(f).avg_tput_mbps(), s.stats(f).median_delay_ms(),
              s.stats(f).p95_delay_ms());
  return 0;
}
