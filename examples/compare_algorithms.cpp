// Compare all eight congestion-control algorithms on one location profile
// (paper §6.3.1). Usage: compare_algorithms [location-index] [seconds]
#include <cstdio>
#include <cstdlib>

#include "sim/algorithms.h"
#include "sim/location.h"

using namespace pbecc;

int main(int argc, char** argv) {
  const int loc_idx = argc > 1 ? std::atoi(argv[1]) : 2;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 12;
  const auto loc = sim::location(loc_idx);
  std::printf("%s\n", loc.describe().c_str());
  std::printf("%-8s %10s %10s %10s %10s  %s\n", "algo", "tput(Mb)", "avg-d(ms)",
              "p95-d(ms)", "med-d(ms)", "CA");
  for (const auto& algo : sim::all_algorithms()) {
    const auto r = sim::run_location(loc, algo, seconds * util::kSecond);
    std::printf("%-8s %10.1f %10.1f %10.1f %10.1f  %s\n", algo.c_str(),
                r.avg_tput_mbps, r.avg_delay_ms, r.p95_delay_ms,
                r.median_delay_ms, r.ca_triggered ? "yes" : "no");
  }
  return 0;
}
