// Multi-user fairness demo (paper §6.4): three phones share one cell;
// flows start staggered. Watch the per-user PRB allocation converge to
// the fair share, and the Jain index of the steady state.
//
//   ./build/examples/multi_user_fairness [algo1 algo2 algo3]
//   e.g. ./build/examples/multi_user_fairness pbe pbe bbr
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "util/stats.h"

using namespace pbecc;

int main(int argc, char** argv) {
  std::vector<std::string> algos = {"pbe", "pbe", "pbe"};
  for (int i = 1; i < argc && i <= 3; ++i) algos[static_cast<std::size_t>(i - 1)] = argv[i];

  sim::ScenarioConfig cfg;
  cfg.seed = 33;
  cfg.cells = {{10.0, 0.02}};
  sim::Scenario s{cfg};

  std::vector<int> flows;
  for (mac::UeId id = 1; id <= 3; ++id) {
    sim::UeSpec ue;
    ue.id = id;
    ue.cell_indices = {0};
    s.add_ue(ue);
    sim::FlowSpec fs;
    fs.algo = algos[id - 1];
    fs.ue = id;
    fs.start = (id - 1) * 5 * util::kSecond + 100 * util::kMillisecond;
    fs.stop = 25 * util::kSecond;
    flows.push_back(s.add_flow(fs));
  }

  std::map<int, std::map<mac::UeId, long>> per_second;
  s.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    for (const auto& a : r.data_allocs) {
      per_second[static_cast<int>(r.sf_index / 1000)][a.ue] += a.n_prbs;
    }
  });
  s.run_until(25 * util::kSecond);

  std::printf("flows: user1=%s (t=0s), user2=%s (t=5s), user3=%s (t=10s)\n\n",
              algos[0].c_str(), algos[1].c_str(), algos[2].c_str());
  std::printf("t(s)   user1  user2  user3   (mean PRBs of 50)\n");
  for (int sec = 0; sec < 25; sec += 2) {
    std::printf("%4d  %6.1f %6.1f %6.1f\n", sec, per_second[sec][1] / 1000.0,
                per_second[sec][2] / 1000.0, per_second[sec][3] / 1000.0);
  }

  std::vector<double> shares;
  for (mac::UeId id = 1; id <= 3; ++id) {
    double total = 0;
    for (int sec = 12; sec < 25; ++sec) total += static_cast<double>(per_second[sec][id]);
    shares.push_back(total);
  }
  std::printf("\nsteady-state (12-25 s) Jain fairness index: %.4f\n",
              util::jain_index(shares));
  for (int i = 0; i < 3; ++i) {
    s.stats(flows[static_cast<std::size_t>(i)]).finish(25 * util::kSecond);
    std::printf("user%d: %.1f Mbit/s, p95 delay %.1f ms\n", i + 1,
                s.stats(flows[static_cast<std::size_t>(i)]).avg_tput_mbps(),
                s.stats(flows[static_cast<std::size_t>(i)]).p95_delay_ms());
  }
  return 0;
}
