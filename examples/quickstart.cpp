// Quickstart: a single PBE-CC flow over a simulated two-carrier LTE cell.
//
// Demonstrates the public API end to end: build a Scenario (base station +
// cells), register a mobile device, start a PBE-CC flow against it, run,
// and read back throughput/delay statistics plus PBE-CC internals (state,
// capacity feedback, decoder stats).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "sim/location.h"
#include "sim/scenario.h"

using namespace pbecc;

int main() {
  // A quiet two-carrier cell site, phone at moderate signal strength.
  sim::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};  // two 10 MHz carriers, idle
  sim::Scenario s{cfg};

  sim::UeSpec ue;
  ue.id = 1;
  ue.cell_indices = {0, 1};
  ue.trace = phy::MobilityTrace::stationary(-92.0);
  s.add_ue(ue);

  sim::FlowSpec flow;
  flow.algo = "pbe";
  flow.ue = 1;
  flow.path.one_way_delay = 25 * util::kMillisecond;  // ~50 ms RTT server
  flow.start = 100 * util::kMillisecond;
  flow.stop = flow.start + 10 * util::kSecond;
  const int f = s.add_flow(flow);

  std::printf("time(s)  state     feedback(Mbit/s)  tput-so-far(Mbit/s)\n");
  for (int sec = 1; sec <= 10; ++sec) {
    s.run_until(flow.start + sec * util::kSecond);
    const auto* client = s.pbe_client(f);
    const char* state = "-";
    switch (client->state()) {
      case pbe::PbeClient::State::kStartup: state = "startup"; break;
      case pbe::PbeClient::State::kWireless: state = "wireless"; break;
      case pbe::PbeClient::State::kInternet: state = "internet"; break;
    }
    std::printf("%6d   %-8s  %16.1f  %19.1f\n", sec, state,
                client->last_feedback_bps() / 1e6,
                s.stats(f).avg_tput_mbps());
  }
  s.run_until(flow.stop + 200 * util::kMillisecond);
  s.stats(f).finish(flow.stop);

  const auto& st = s.stats(f);
  std::printf("\n=== PBE-CC quickstart summary ===\n");
  std::printf("delivered:        %llu packets, %.1f MB\n",
              static_cast<unsigned long long>(st.packets()),
              static_cast<double>(st.bytes()) / 1e6);
  std::printf("avg throughput:   %.1f Mbit/s\n", st.avg_tput_mbps());
  std::printf("one-way delay:    avg %.1f ms, median %.1f ms, p95 %.1f ms\n",
              st.avg_delay_ms(), st.median_delay_ms(), st.p95_delay_ms());
  std::printf("carrier aggregation triggered: %s\n",
              s.bs().ca(1).ever_aggregated() ? "yes" : "no");
  const auto& dec = s.pbe_client(f)->monitor().decoder(1);
  std::printf("blind decoder:    %llu messages from %llu candidates\n",
              static_cast<unsigned long long>(dec.stats().messages_decoded),
              static_cast<unsigned long long>(dec.stats().candidates_tried));
  return 0;
}
