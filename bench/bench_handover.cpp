// Handover extension bench (the paper's §1 argument against base-station-
// centric designs: "In the event of a handover between cell towers, ABC
// would need to migrate state").
//
// A PBE-CC flow rides through an inter-site handover: the serving cell
// changes mid-flow, in-flight HARQ blocks are dropped (no forwarding), and
// the client — whose decoders already watch the neighbor list — re-runs
// its fair-share approach on the new primary without any server-side
// state migration.
#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_handover", argc, argv);
  bench::header("Extension: inter-site handover (endpoint keeps all the state)");

  struct Row {
    double tput = 0, p50 = 0, p95 = 0;
    unsigned long long lost = 0;
  };
  const std::vector<std::string> algos = {"pbe", "abc", "bbr"};
  bench::WallTimer wt;
  const auto rows = par::parallel_map(algos.size(), [&](std::size_t j) {
    sim::ScenarioConfig cfg;
    cfg.seed = 77;
    cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
    sim::Scenario s{cfg};
    sim::UeSpec ue;
    ue.cell_indices = {0, 1};  // phone tracks both cells (neighbor list)
    // Keep CA off so the handover is a clean primary switch.
    ue.ca.activation_queue_bytes = 1 << 30;
    ue.ca.activation_utilization = 2.0;
    s.add_ue(ue);
    sim::FlowSpec fs;
    fs.algo = algos[j];
    fs.stop = 20 * util::kSecond;
    const int f = s.add_flow(fs);

    // Ping-pong handovers at 5, 10 and 15 seconds.
    s.run_until(5 * util::kSecond);
    s.bs().handover(1, {2});
    s.run_until(10 * util::kSecond);
    s.bs().handover(1, {1});
    s.run_until(15 * util::kSecond);
    s.bs().handover(1, {2});
    s.run_until(20 * util::kSecond);
    s.stats(f).finish(fs.stop);
    return Row{s.stats(f).avg_tput_mbps(), s.stats(f).median_delay_ms(),
               s.stats(f).p95_delay_ms(),
               static_cast<unsigned long long>(
                   s.sender(f).total_lost_packets())};
  });
  // 3 algos x 20 s x two cells, 1 ms subframes.
  rep.add("handover_3algo", wt.ms(), 120000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n  %-8s %12s %12s %12s %14s\n", "algo", "tput(Mb)",
              "p50-d(ms)", "p95-d(ms)", "lost packets");
  for (std::size_t j = 0; j < algos.size(); ++j) {
    std::printf("  %-8s %12.1f %12.1f %12.1f %14llu\n", algos[j].c_str(),
                rows[j].tput, rows[j].p50, rows[j].p95, rows[j].lost);
  }
  std::printf("\n  Expected: PBE-CC re-ramps on each new primary within ~3 RTTs\n"
              "  and keeps delay near the floor; losses are limited to the\n"
              "  HARQ blocks in flight at the instant of each handover.\n");
  return 0;
}
