// Figure 21: fairness on the shared primary cell, four panels:
//  (a) three PBE-CC flows with similar RTTs, staggered starts/stops;
//  (b) three PBE-CC flows with RTTs 52/64/297 ms;
//  (c) two PBE-CC flows + one BBR flow;
//  (d) two PBE-CC flows + one CUBIC flow.
// We print the per-second PRB allocation of each user on the primary cell
// and Jain's index over the 2-flow and 3-flow phases.
#include <map>

#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

using util::kSecond;

struct PanelData {
  std::map<int, std::map<mac::UeId, long>> per_second;
};

PanelData run_panel(const std::vector<std::string>& algos,
                    const std::vector<util::Duration>& one_way_delays) {
  sim::ScenarioConfig cfg;
  cfg.seed = 171;
  cfg.cells = {{10.0, 0.02}};
  sim::Scenario s{cfg};
  const std::size_t n = algos.size();
  // Paper schedule: starts at 0/10/20 s, ends at 60/50/40 s.
  const util::Time starts[] = {100 * util::kMillisecond, 10 * kSecond, 20 * kSecond};
  const util::Time stops[] = {60 * kSecond, 50 * kSecond, 40 * kSecond};

  for (std::size_t i = 0; i < n; ++i) {
    sim::UeSpec ue;
    ue.id = static_cast<mac::UeId>(i + 1);
    ue.cell_indices = {0};
    s.add_ue(ue);
    sim::FlowSpec fs;
    fs.algo = algos[i];
    fs.ue = ue.id;
    fs.path.one_way_delay = one_way_delays[i];
    fs.start = starts[i];
    fs.stop = stops[i];
    s.add_flow(fs);
  }

  PanelData out;
  auto& per_second = out.per_second;
  s.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    for (const auto& a : r.data_allocs) {
      per_second[static_cast<int>(r.sf_index / 1000)][a.ue] += a.n_prbs;
    }
  });
  s.run_until(60 * kSecond);
  return out;
}

void print_panel(const char* title, PanelData& data) {
  auto& per_second = data.per_second;
  std::printf("\n--- %s ---\n", title);
  std::printf("  t(s)   user1  user2  user3  (mean PRBs on the primary cell)\n");
  for (int sec = 0; sec < 60; sec += 4) {
    std::printf("  %4d  %6.1f %6.1f %6.1f\n", sec,
                per_second[sec][1] / 1000.0, per_second[sec][2] / 1000.0,
                per_second[sec][3] / 1000.0);
  }

  // Jain's index over the phases where exactly 2 / exactly 3 flows run.
  auto jain_over = [&](int lo, int hi, std::vector<mac::UeId> users) {
    std::vector<double> totals(users.size(), 0);
    for (int sec = lo; sec < hi; ++sec) {
      for (std::size_t u = 0; u < users.size(); ++u) {
        totals[u] += static_cast<double>(per_second[sec][users[u]]);
      }
    }
    return util::jain_index(totals);
  };
  std::printf("  Jain index: two-flow phase (12-19 s) %.4f,  "
              "three-flow phase (22-39 s) %.4f\n",
              jain_over(12, 20, {1, 2}), jain_over(22, 40, {1, 2, 3}));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig21", argc, argv);
  bench::header("Figure 21: multi-user, RTT and cross-protocol fairness");
  const util::Duration rtt_similar[] = {26 * util::kMillisecond,
                                        28 * util::kMillisecond,
                                        32 * util::kMillisecond};
  const util::Duration rtt_mixed[] = {26 * util::kMillisecond,
                                      32 * util::kMillisecond,
                                      148 * util::kMillisecond};

  struct PanelSpec {
    const char* title;
    std::vector<std::string> algos;
    std::vector<util::Duration> delays;
  };
  const std::vector<PanelSpec> panels = {
      {"(a) three PBE-CC flows, similar RTTs",
       {"pbe", "pbe", "pbe"},
       {rtt_similar[0], rtt_similar[1], rtt_similar[2]}},
      {"(b) three PBE-CC flows, RTTs 52/64/297 ms",
       {"pbe", "pbe", "pbe"},
       {rtt_mixed[0], rtt_mixed[1], rtt_mixed[2]}},
      {"(c) two PBE-CC flows + one BBR flow",
       {"pbe", "bbr", "pbe"},
       {rtt_similar[0], rtt_similar[1], rtt_similar[2]}},
      {"(d) two PBE-CC flows + one CUBIC flow",
       {"pbe", "cubic", "pbe"},
       {rtt_similar[0], rtt_similar[1], rtt_similar[2]}},
  };
  bench::WallTimer wt;
  auto data = par::parallel_map(panels.size(), [&](std::size_t j) {
    return run_panel(panels[j].algos, panels[j].delays);
  });
  // 4 panels x 60 s x one cell, 1 ms subframes.
  rep.add("4_fairness_panels", wt.ms(), 240000.0 / (wt.ms() / 1000.0), 0);
  for (std::size_t j = 0; j < panels.size(); ++j) {
    print_panel(panels[j].title, data[j]);
  }

  std::printf("\n  Paper shape: every panel converges to near-equal PRB shares\n"
              "  (Jain indices 98.3-99.97%% in the paper); the base station's\n"
              "  per-user fairness keeps even CUBIC/BBR from starving PBE-CC.\n");
  return 0;
}
