// Chaos sweep: graceful degradation of the PBE feedback loop (DESIGN.md
// §8). Not a paper figure — this bench guards the robustness claim that
// PBE-CC *with* its degradation machinery never does worse than the
// algorithm it falls back to.
//
// Part 1 sweeps DCI-blackout intensity (fraction of each second in which
// the monitor decodes nothing) and compares PBE-CC against plain BBR on
// the same faulty link. PBE-CC's advantage should shrink as the feed
// degrades and bottom out at BBR-level — never below — because at 100%
// blackout the sender is simply running its fallback BBR.
//
// Part 2 checks the recovery deadline: a solid blackout window ends, and
// the sender must re-enter PRECISE within 500 ms (sim time) of the feed
// returning.
//
// Part 3 is the hybrid win-condition matrix (ISSUE 7 / DESIGN.md §13):
// every canned fault profile x {pbe, bbr, hybrid}. The hybrid
// (confidence-weighted PBE x delay-gradient blend) must deliver at least
// 0.95x the best single estimator's throughput at PBE-like tail delay on
// each chaos profile, and match PBE within 2% on the clean profile.
//
// Exits non-zero if any assertion fails (CI-friendly).
//
//   --telemetry <path>   sample the Part-2 recovery run into a .tsv.pbt
//                        telemetry recording (the degradation-state
//                        timeline is the interesting series here)
//   --chaos-json <path>  write the Part-3 matrix as a JSON array of
//                        self-describing records (schema_version, fault
//                        profile + seed, algo, throughput/delay metrics)
//                        for bench_gate.py's `chaos` subcommand
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

#include "bench/bench_common.h"
#include "fault/fault.h"
#include "pbe/pbe_sender.h"
#include "sim/location.h"
#include "sim/scenario.h"
#include "tel/file.h"
#include "tel/sampler.h"

using namespace pbecc;

namespace {

constexpr int kLocation = 2;  // 1-cell busy indoor: the paper's base case

sim::LocationRunResult run_faulty(const std::string& algo, double duty,
                                  util::Duration flow_len) {
  fault::FaultProfile profile;
  profile.blackout_duty = duty;
  profile.blackout_period = util::kSecond;
  profile.blackout_from = 0;
  return sim::run_location(sim::location(kLocation), algo, flow_len,
                           duty > 0 ? &profile : nullptr, /*fault_seed=*/3);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fault", argc, argv);
  const util::Duration flow_len = bench::flow_seconds(argc, argv, 12);
  std::string telemetry_path;
  std::string chaos_json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) telemetry_path = argv[i + 1];
    if (std::strcmp(argv[i], "--chaos-json") == 0) {
      chaos_json_path = argv[i + 1];
    }
  }
  bench::header("Chaos sweep: throughput/delay vs DCI-blackout intensity");

  // ---------------- Part 1: intensity sweep, PBE-CC vs plain BBR.
  // Every (algo, duty) point is an independent simulation: pool fan-out.
  const double duties[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> algos = {"pbe", "bbr", "hybrid"};
  struct Job {
    std::string algo;
    double duty;
  };
  std::vector<Job> jobs;
  for (const auto& algo : algos) {
    for (const double duty : duties) jobs.push_back({algo, duty});
  }
  bench::WallTimer wt;
  const auto results = par::parallel_map(jobs.size(), [&](std::size_t j) {
    return run_faulty(jobs[j].algo, jobs[j].duty, flow_len);
  });
  std::map<double, std::map<std::string, sim::LocationRunResult>> grid;
  std::uint64_t sim_sfs = 0, attempts = 0;
  std::printf("\n  %-8s %8s %12s %12s %12s\n", "algo", "duty", "tput(Mb)",
              "p50-d(ms)", "p95-d(ms)");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& r = results[j];
    grid[jobs[j].duty][jobs[j].algo] = r;
    sim_sfs += r.sim_cell_subframes;
    attempts += r.decode_candidates;
    std::printf("  %-8s %8.2f %12.2f %12.1f %12.1f\n", jobs[j].algo.c_str(),
                jobs[j].duty, r.avg_tput_mbps, r.median_delay_ms,
                r.p95_delay_ms);
  }
  rep.add("3algo_x_5duty", wt.ms(),
          static_cast<double>(sim_sfs) / (wt.ms() / 1000.0), attempts);

  // Under total blackout PBE-CC *is* its fallback BBR (after a short
  // detection transient), so it must land in BBR's neighborhood.
  const double pbe_dead = grid[1.0]["pbe"].avg_tput_mbps;
  const double bbr_dead = grid[1.0]["bbr"].avg_tput_mbps;
  const double ratio = bbr_dead > 0 ? pbe_dead / bbr_dead : 1.0;
  std::printf("\n  100%% blackout: pbe %.2f Mbit/s vs bbr %.2f Mbit/s "
              "(ratio %.2f, need >= 0.90)\n", pbe_dead, bbr_dead, ratio);
  bool ok = ratio >= 0.90;

  // ---------------- Part 2: PRECISE re-entry deadline after the feed heals.
  bench::header("Recovery: PRECISE re-entry after a solid blackout window");
  {
    constexpr util::Time kHealAt = 5 * util::kSecond;
    fault::FaultProfile profile;
    profile.blackout_duty = 1.0;
    profile.blackout_from = 2 * util::kSecond;
    profile.blackout_until = kHealAt;

    sim::ScenarioConfig cfg = sim::scenario_config_for(sim::location(kLocation));
    cfg.fault = profile;
    cfg.fault_seed = 3;
    std::unique_ptr<tel::Sampler> telemetry;
    if (!telemetry_path.empty()) {
      telemetry = std::make_unique<tel::Sampler>();
      telemetry->recorder().set_meta("source", "bench_fault_recovery");
      cfg.telemetry = telemetry.get();
    }
    sim::Scenario s{std::move(cfg)};
    s.add_ue(sim::ue_spec_for(sim::location(kLocation)));
    sim::FlowSpec flow;
    flow.algo = "pbe";
    flow.path.one_way_delay = 25 * util::kMillisecond;
    flow.start = 100 * util::kMillisecond;
    flow.stop = 8 * util::kSecond;
    const int f = s.add_flow(flow);

    auto& sender = dynamic_cast<pbe::PbeSender&>(s.sender(f).controller());

    bool saw_fallback = false;
    util::Time precise_again = -1;
    for (util::Time t = flow.start; t < flow.stop; t += 10 * util::kMillisecond) {
      s.run_until(t);
      const auto st = sender.degradation_state();
      if (t < kHealAt && st == pbe::DegradationState::kFallback) {
        saw_fallback = true;
      }
      if (saw_fallback && precise_again < 0 && t >= kHealAt &&
          st == pbe::DegradationState::kPrecise) {
        precise_again = t;
      }
    }
    const double recover_ms =
        precise_again >= 0
            ? static_cast<double>(precise_again - kHealAt) /
                  static_cast<double>(util::kMillisecond)
            : -1.0;
    std::printf("\n  fallback during blackout: %s\n",
                saw_fallback ? "yes" : "NO (fail)");
    std::printf("  PRECISE re-entry after heal: %s%.0f ms (need <= 500)\n",
                precise_again >= 0 ? "+" : "never; ", recover_ms);
    ok = ok && saw_fallback && precise_again >= 0 && recover_ms <= 500.0;

    if (telemetry) {
      std::string err;
      if (!tel::write_file(telemetry->recorder(), telemetry_path, &err)) {
        std::fprintf(stderr, "telemetry write failed: %s\n", err.c_str());
        return 2;
      }
      std::printf("  telemetry: %llu samples -> %s\n",
                  static_cast<unsigned long long>(
                      telemetry->recorder().total_samples()),
                  telemetry_path.c_str());
    }
  }

  // ---------------- Part 3: hybrid win-condition matrix over the canned
  // chaos profiles. One independent simulation per (profile, algo) cell.
  bench::header("Hybrid win conditions: canned profiles x {pbe, bbr, hybrid}");
  {
    constexpr std::uint64_t kChaosSeed = 1;
    const auto& profiles = fault::profile_names();
    const std::vector<std::string> chaos_algos = {"pbe", "bbr", "hybrid"};
    struct Cell {
      std::string profile;
      std::string algo;
    };
    std::vector<Cell> cells;
    for (const auto& p : profiles) {
      for (const auto& a : chaos_algos) cells.push_back({p, a});
    }
    bench::WallTimer cwt;
    std::uint64_t chaos_sfs = 0, chaos_attempts = 0;
    const auto cell_results = par::parallel_map(cells.size(), [&](std::size_t j) {
      const auto profile = fault::profile_by_name(cells[j].profile);
      return sim::run_location(sim::location(kLocation), cells[j].algo,
                               flow_len,
                               profile->active() ? &*profile : nullptr,
                               kChaosSeed);
    });
    std::map<std::string, std::map<std::string, sim::LocationRunResult>> m;
    std::printf("\n  %-16s %-8s %10s %10s %10s\n", "profile", "algo",
                "tput(Mb)", "p50-d(ms)", "p95-d(ms)");
    for (std::size_t j = 0; j < cells.size(); ++j) {
      const auto& r = cell_results[j];
      m[cells[j].profile][cells[j].algo] = r;
      chaos_sfs += r.sim_cell_subframes;
      chaos_attempts += r.decode_candidates;
      std::printf("  %-16s %-8s %10.2f %10.1f %10.1f\n",
                  cells[j].profile.c_str(), cells[j].algo.c_str(),
                  r.avg_tput_mbps, r.median_delay_ms, r.p95_delay_ms);
    }
    rep.add("chaos_matrix", cwt.ms(),
            static_cast<double>(chaos_sfs) / (cwt.ms() / 1000.0),
            chaos_attempts);

    // Win conditions (also re-derived from the JSON by bench_gate.py
    // `chaos`, so the CI artifact is auditable on its own):
    //   chaos profiles: hybrid tput >= 0.95 x max(pbe, bbr)
    //                   and hybrid p95 delay <= 1.1 x pbe p95;
    //   clean profile:  hybrid tput within 2% of pbe.
    std::printf("\n");
    for (const auto& p : profiles) {
      const auto& pbe = m[p]["pbe"];
      const auto& bbr = m[p]["bbr"];
      const auto& hyb = m[p]["hybrid"];
      bool cell_ok;
      if (p == "none") {
        cell_ok = hyb.avg_tput_mbps >= 0.98 * pbe.avg_tput_mbps;
        std::printf("  %-16s hybrid %.2f vs pbe %.2f Mbit/s "
                    "(need >= 0.98x) %s\n",
                    p.c_str(), hyb.avg_tput_mbps, pbe.avg_tput_mbps,
                    cell_ok ? "ok" : "FAIL");
      } else {
        const double floor =
            0.95 * std::max(pbe.avg_tput_mbps, bbr.avg_tput_mbps);
        const double delay_cap = 1.1 * pbe.p95_delay_ms;
        const bool tput_ok = hyb.avg_tput_mbps >= floor;
        const bool delay_ok = hyb.p95_delay_ms <= delay_cap;
        cell_ok = tput_ok && delay_ok;
        std::printf("  %-16s hybrid %.2f Mbit/s (need >= %.2f) %s, "
                    "p95 %.1f ms (need <= %.1f) %s\n",
                    p.c_str(), hyb.avg_tput_mbps, floor,
                    tput_ok ? "ok" : "FAIL", hyb.p95_delay_ms, delay_cap,
                    delay_ok ? "ok" : "FAIL");
      }
      ok = ok && cell_ok;
    }

    if (!chaos_json_path.empty()) {
      // Self-describing records, PR-6 JSON convention: schema_version
      // first, fixed key order, fault profile + seed inline so a chaos
      // artifact can be gated (and re-audited) with no side channel.
      FILE* f = std::fopen(chaos_json_path.c_str(), "w");
      if (!f) {
        std::perror("--chaos-json open");
        return 2;
      }
      std::fprintf(f, "[\n");
      for (std::size_t j = 0; j < cells.size(); ++j) {
        const auto& r = cell_results[j];
        std::fprintf(
            f,
            "  {\"schema_version\": 1, \"bench\": \"bench_fault\", "
            "\"part\": \"chaos\", \"fault_profile\": \"%s\", "
            "\"fault_seed\": %llu, \"algo\": \"%s\", "
            "\"flow_seconds\": %.1f, \"tput_mbps\": %.3f, "
            "\"p50_delay_ms\": %.2f, \"p95_delay_ms\": %.2f}%s\n",
            cells[j].profile.c_str(),
            static_cast<unsigned long long>(kChaosSeed),
            cells[j].algo.c_str(), util::to_seconds(flow_len),
            r.avg_tput_mbps, r.median_delay_ms, r.p95_delay_ms,
            j + 1 < cells.size() ? "," : "");
      }
      std::fprintf(f, "]\n");
      if (std::fclose(f) != 0) return 2;
      std::printf("\n  chaos matrix -> %s\n", chaos_json_path.c_str());
    }
  }

  std::printf("\n  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
