// Figure 14: the same order statistics as Figure 13, for two outdoor
// locations with two aggregated cells — one during busy hours, one late at
// night (idle).
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/location.h"

using namespace pbecc;

namespace {

sim::LocationProfile pick(bool busy) {
  for (int i = 0; i < sim::kNumLocations; ++i) {
    const auto loc = sim::location(i);
    if (!loc.indoor && loc.n_cells == 2 && loc.busy == busy) return loc;
  }
  return sim::location(0);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Duration len = bench::flow_seconds(argc, argv, 12);
  bench::header("Figure 14: outdoor two-cell locations, busy and idle");
  for (const bool busy : {true, false}) {
    const auto loc = pick(busy);
    std::printf("\n--- (%c) outdoor, %s [%s] ---\n", busy ? 'a' : 'b',
                busy ? "busy hours" : "late night", loc.describe().c_str());
    for (const auto& algo : sim::all_algorithms()) {
      const auto r = sim::run_location(loc, algo, len);
      std::printf("  %-8s tput(Mbit/s):", algo.c_str());
      for (int p : {10, 25, 50, 75, 90}) {
        std::printf(" %6.1f", r.window_tputs.percentile(p));
      }
      std::printf("   delay(ms):");
      for (int p : {10, 25, 50, 75, 90}) {
        std::printf(" %6.1f", r.delays_ms.percentile(p));
      }
      std::printf("%s\n", r.ca_triggered ? "  [CA]" : "");
    }
  }
  std::printf("\n  Paper shape: same ordering as Figure 13; on the idle outdoor\n"
              "  link PBE-CC's throughput and delay variance are small.\n");
  return 0;
}
