// Figure 14: the same order statistics as Figure 13, for two outdoor
// locations with two aggregated cells — one during busy hours, one late at
// night (idle).
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/location.h"

using namespace pbecc;

namespace {

sim::LocationProfile pick(bool busy) {
  for (int i = 0; i < sim::kNumLocations; ++i) {
    const auto loc = sim::location(i);
    if (!loc.indoor && loc.n_cells == 2 && loc.busy == busy) return loc;
  }
  return sim::location(0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig14", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 12);
  bench::header("Figure 14: outdoor two-cell locations, busy and idle");
  const auto algos = sim::all_algorithms();
  const bool panels[] = {true, false};
  // 2 panels x 8 algorithms, each an independent run: pool fan-out.
  bench::WallTimer wt;
  const auto results =
      par::parallel_map(2 * algos.size(), [&](std::size_t j) {
        return sim::run_location(pick(panels[j / algos.size()]),
                                 algos[j % algos.size()], len);
      });
  std::uint64_t sim_sfs = 0, attempts = 0;
  for (const auto& r : results) {
    sim_sfs += r.sim_cell_subframes;
    attempts += r.decode_candidates;
  }
  rep.add("2panel_x_8algo", wt.ms(),
          static_cast<double>(sim_sfs) / (wt.ms() / 1000.0), attempts);

  for (std::size_t p = 0; p < 2; ++p) {
    const bool busy = panels[p];
    const auto loc = pick(busy);
    std::printf("\n--- (%c) outdoor, %s [%s] ---\n", busy ? 'a' : 'b',
                busy ? "busy hours" : "late night", loc.describe().c_str());
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const auto& r = results[p * algos.size() + a];
      std::printf("  %-8s tput(Mbit/s):", algos[a].c_str());
      for (int pc : {10, 25, 50, 75, 90}) {
        std::printf(" %6.1f", r.window_tputs.percentile(pc));
      }
      std::printf("   delay(ms):");
      for (int pc : {10, 25, 50, 75, 90}) {
        std::printf(" %6.1f", r.delays_ms.percentile(pc));
      }
      std::printf("%s\n", r.ca_triggered ? "  [CA]" : "");
    }
  }
  std::printf("\n  Paper shape: same ordering as Figure 13; on the idle outdoor\n"
              "  link PBE-CC's throughput and delay variance are small.\n");
  return 0;
}
