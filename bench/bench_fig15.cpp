// Figure 15: at how many locations does each algorithm push hard enough
// that the network activates carrier aggregation? (Max 30: the 10
// single-cell "Redmi 8" locations cannot aggregate.)
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/location.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig15", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 8);
  bench::header("Figure 15: locations where carrier aggregation triggers");

  const auto algos = sim::all_algorithms();
  std::vector<int> ca_locs;
  for (int i = 0; i < sim::kNumLocations; ++i) {
    if (sim::location(i).n_cells >= 2) ca_locs.push_back(i);
  }
  const int ca_capable = static_cast<int>(ca_locs.size());

  bench::WallTimer wt;
  const auto results =
      par::parallel_map(ca_locs.size() * algos.size(), [&](std::size_t j) {
        return sim::run_location(
            sim::location(ca_locs[j / algos.size()]),
            algos[j % algos.size()], len);
      });
  std::map<std::string, int> triggered;
  std::uint64_t sim_sfs = 0, attempts = 0;
  for (std::size_t j = 0; j < results.size(); ++j) {
    triggered[algos[j % algos.size()]] += results[j].ca_triggered ? 1 : 0;
    sim_sfs += results[j].sim_cell_subframes;
    attempts += results[j].decode_candidates;
  }
  rep.add("30loc_x_8algo", wt.ms(),
          static_cast<double>(sim_sfs) / (wt.ms() / 1000.0), attempts);

  std::printf("\n  algorithm   CA triggered (of %d CA-capable locations)\n",
              ca_capable);
  for (const auto& algo : sim::all_algorithms()) {
    std::printf("  %-9s   %2d  ", algo.c_str(), triggered[algo]);
    for (int k = 0; k < triggered[algo]; ++k) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n  Paper shape: PBE-CC, BBR, CUBIC and Verus trigger aggregation\n"
              "  at most locations; Copa, PCC, PCC-Vivace and Sprout send so\n"
              "  conservatively the network never activates a secondary cell,\n"
              "  leaving capacity unused.\n");
  return 0;
}
