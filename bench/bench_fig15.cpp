// Figure 15: at how many locations does each algorithm push hard enough
// that the network activates carrier aggregation? (Max 30: the 10
// single-cell "Redmi 8" locations cannot aggregate.)
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/location.h"

using namespace pbecc;

int main(int argc, char** argv) {
  const util::Duration len = bench::flow_seconds(argc, argv, 8);
  bench::header("Figure 15: locations where carrier aggregation triggers");

  std::map<std::string, int> triggered;
  int ca_capable = 0;
  for (int i = 0; i < sim::kNumLocations; ++i) {
    const auto loc = sim::location(i);
    if (loc.n_cells < 2) continue;
    ++ca_capable;
    for (const auto& algo : sim::all_algorithms()) {
      triggered[algo] += sim::run_location(loc, algo, len).ca_triggered ? 1 : 0;
    }
    std::fprintf(stderr, "  [fig15] CA-capable location %d done\r", ca_capable);
  }
  std::fprintf(stderr, "\n");

  std::printf("\n  algorithm   CA triggered (of %d CA-capable locations)\n",
              ca_capable);
  for (const auto& algo : sim::all_algorithms()) {
    std::printf("  %-9s   %2d  ", algo.c_str(), triggered[algo]);
    for (int k = 0; k < triggered[algo]; ++k) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n  Paper shape: PBE-CC, BBR, CUBIC and Verus trigger aggregation\n"
              "  at most locations; Copa, PCC, PCC-Vivace and Sprout send so\n"
              "  conservatively the network never activates a secondary cell,\n"
              "  leaving capacity unused.\n");
  return 0;
}
