// Figure 13: detailed one-way-delay / throughput order statistics for all
// eight algorithms at four representative indoor locations:
//   (a) 1 aggregated cell, busy;   (b) 2 cells, busy;
//   (c) 3 cells, busy;             (d) 3 cells, idle (late night).
// For each algorithm we print the 10/25/50/75/90th percentiles of
// throughput (100 ms windows) and one-way delay — the box+whisker data of
// the paper's plots.
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/location.h"

using namespace pbecc;

namespace {

sim::LocationProfile pick(int n_cells, bool busy) {
  for (int i = 0; i < sim::kNumLocations; ++i) {
    const auto loc = sim::location(i);
    if (loc.indoor && loc.n_cells == n_cells && loc.busy == busy) return loc;
  }
  return sim::location(0);
}

void run_panel(const char* title, const sim::LocationProfile& loc,
               util::Duration len) {
  std::printf("\n--- %s [%s] ---\n", title, loc.describe().c_str());
  for (const auto& algo : sim::all_algorithms()) {
    const auto r = sim::run_location(loc, algo, len);
    std::printf("  %-8s tput(Mbit/s):", algo.c_str());
    for (int p : {10, 25, 50, 75, 90}) {
      std::printf(" %6.1f", r.window_tputs.percentile(p));
    }
    std::printf("   delay(ms):");
    for (int p : {10, 25, 50, 75, 90}) {
      std::printf(" %6.1f", r.delays_ms.percentile(p));
    }
    std::printf("%s\n", r.ca_triggered ? "  [CA]" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Duration len = bench::flow_seconds(argc, argv, 12);
  bench::header("Figure 13: delay/throughput order statistics, indoor locations");
  run_panel("(a) one cell, busy", pick(1, true), len);
  run_panel("(b) two cells, busy", pick(2, true), len);
  run_panel("(c) three cells, busy", pick(3, true), len);
  run_panel("(d) three cells, idle", pick(3, false), len);
  std::printf("\n  Paper shape: PBE-CC and BBR lead on throughput with PBE-CC at\n"
              "  a fraction of the delay; Verus/CUBIC pay hundreds of ms; Copa,\n"
              "  PCC, Vivace and Sprout sit in the low-throughput/low-delay\n"
              "  corner. Variance collapses on the idle cell (panel d).\n");
  return 0;
}
