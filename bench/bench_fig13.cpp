// Figure 13: detailed one-way-delay / throughput order statistics for all
// eight algorithms at four representative indoor locations:
//   (a) 1 aggregated cell, busy;   (b) 2 cells, busy;
//   (c) 3 cells, busy;             (d) 3 cells, idle (late night).
// For each algorithm we print the 10/25/50/75/90th percentiles of
// throughput (100 ms windows) and one-way delay — the box+whisker data of
// the paper's plots.
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/location.h"

using namespace pbecc;

namespace {

sim::LocationProfile pick(int n_cells, bool busy) {
  for (int i = 0; i < sim::kNumLocations; ++i) {
    const auto loc = sim::location(i);
    if (loc.indoor && loc.n_cells == n_cells && loc.busy == busy) return loc;
  }
  return sim::location(0);
}

void print_panel(const char* title, const sim::LocationProfile& loc,
                 const std::vector<std::string>& algos,
                 const std::vector<sim::LocationRunResult>& results) {
  std::printf("\n--- %s [%s] ---\n", title, loc.describe().c_str());
  for (std::size_t a = 0; a < algos.size(); ++a) {
    const auto& r = results[a];
    std::printf("  %-8s tput(Mbit/s):", algos[a].c_str());
    for (int p : {10, 25, 50, 75, 90}) {
      std::printf(" %6.1f", r.window_tputs.percentile(p));
    }
    std::printf("   delay(ms):");
    for (int p : {10, 25, 50, 75, 90}) {
      std::printf(" %6.1f", r.delays_ms.percentile(p));
    }
    std::printf("%s\n", r.ca_triggered ? "  [CA]" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig13", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 12);
  bench::header("Figure 13: delay/throughput order statistics, indoor locations");

  const auto algos = sim::all_algorithms();
  const std::vector<std::pair<const char*, sim::LocationProfile>> panels = {
      {"(a) one cell, busy", pick(1, true)},
      {"(b) two cells, busy", pick(2, true)},
      {"(c) three cells, busy", pick(3, true)},
      {"(d) three cells, idle", pick(3, false)},
  };
  // 4 panels x 8 algorithms of independent runs: one flat pool fan-out.
  bench::WallTimer wt;
  const auto results =
      par::parallel_map(panels.size() * algos.size(), [&](std::size_t j) {
        return sim::run_location(panels[j / algos.size()].second,
                                 algos[j % algos.size()], len);
      });
  std::uint64_t sim_sfs = 0, attempts = 0;
  for (const auto& r : results) {
    sim_sfs += r.sim_cell_subframes;
    attempts += r.decode_candidates;
  }
  rep.add("4panel_x_8algo", wt.ms(),
          static_cast<double>(sim_sfs) / (wt.ms() / 1000.0), attempts);

  for (std::size_t p = 0; p < panels.size(); ++p) {
    print_panel(panels[p].first, panels[p].second, algos,
                {results.begin() + static_cast<std::ptrdiff_t>(p * algos.size()),
                 results.begin() +
                     static_cast<std::ptrdiff_t>((p + 1) * algos.size())});
  }
  std::printf("\n  Paper shape: PBE-CC and BBR lead on throughput with PBE-CC at\n"
              "  a fraction of the delay; Verus/CUBIC pay hundreds of ms; Copa,\n"
              "  PCC, Vivace and Sprout sit in the low-throughput/low-delay\n"
              "  corner. Variance collapses on the idle cell (panel d).\n");
  return 0;
}
