// Micro-benchmarks (google-benchmark): the per-subframe costs that
// determine whether PBE-CC's measurement module can run at line rate —
// the paper's decoder sustains six cells per PC with <40% per-core load.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "decoder/blind_decoder.h"
#include "sim/location.h"
#include "decoder/user_tracker.h"
#include "mac/scheduler.h"
#include "pbe/capacity_estimator.h"
#include "pbe/rate_translator.h"
#include "phy/convolutional.h"
#include "phy/pdcch.h"
#include "util/crc.h"

using namespace pbecc;

namespace {

phy::PdcchSubframe busy_subframe(int n_msgs) {
  phy::CellConfig cell{1, 20.0};
  phy::PdcchBuilder b(cell, 0);
  for (int i = 0; i < n_msgs; ++i) {
    phy::Dci d;
    d.rnti = static_cast<phy::Rnti>(0x100 + i);
    d.format = static_cast<phy::DciFormat>(i % phy::kNumDciFormats);
    d.prb_start = 0;
    d.n_prbs = 10;
    const bool mimo = d.format == phy::DciFormat::kFormat2 ||
                      d.format == phy::DciFormat::kFormat2A;
    d.mcs = {10, mimo ? 2 : 1};
    b.add(d, 2);
  }
  return std::move(b).build();
}

void BM_BlindDecodeSubframe(benchmark::State& state) {
  const auto sf = busy_subframe(static_cast<int>(state.range(0)));
  decoder::BlindDecoder dec{phy::CellConfig{1, 20.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode(sf));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("subframes decoded; 1000/s = one cell in real time");
}
BENCHMARK(BM_BlindDecodeSubframe)->Arg(1)->Arg(4)->Arg(16);

void BM_ConvolutionalDecode(benchmark::State& state) {
  // One Viterbi decode of an AL4 block (the srsLTE-equivalent path).
  phy::Dci d;
  d.rnti = 0x222;
  d.format = phy::DciFormat::kFormat1;
  d.n_prbs = 30;
  d.mcs = {10, 1};
  const auto msg = phy::encode_dci(d);
  const auto block = phy::rate_match(phy::conv_encode(msg), 4 * 72);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::conv_decode(block, msg.size()));
  }
}
BENCHMARK(BM_ConvolutionalDecode);

void BM_DciEncode(benchmark::State& state) {
  phy::Dci d;
  d.rnti = 0x1234;
  d.format = phy::DciFormat::kFormat2;
  d.n_prbs = 50;
  d.mcs = {12, 2};
  for (auto _ : state) benchmark::DoNotOptimize(phy::encode_dci(d));
}
BENCHMARK(BM_DciEncode);

void BM_Crc16(benchmark::State& state) {
  util::BitVec bits;
  for (int i = 0; i < 64; ++i) bits.push_bit((i * 7 % 3) == 0);
  for (auto _ : state) benchmark::DoNotOptimize(util::crc16(bits));
}
BENCHMARK(BM_Crc16);

void BM_UserTrackerSubframe(benchmark::State& state) {
  decoder::UserTracker tracker{100};
  std::vector<phy::Dci> msgs;
  for (int i = 0; i < 6; ++i) {
    phy::Dci d;
    d.rnti = static_cast<phy::Rnti>(0x100 + i);
    d.format = phy::DciFormat::kFormat1;
    d.n_prbs = 12;
    d.mcs = {10, 1};
    msgs.push_back(d);
  }
  std::int64_t sf = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.on_subframe(sf++, msgs, 0x100));
  }
}
BENCHMARK(BM_UserTrackerSubframe);

void BM_CapacityEstimatorUpdate(benchmark::State& state) {
  pbe::CapacityEstimator est;
  decoder::CellObservation o;
  o.cell = 1;
  o.cell_prbs = 100;
  o.summary.own_prbs = 30;
  o.summary.own_bits_per_prb = 1000;
  o.summary.idle_prbs = 20;
  o.summary.data_users = 3;
  std::vector<decoder::CellObservation> obs = {o, o, o};
  obs[1].cell = 2;
  obs[2].cell = 3;
  util::Time t = 0;
  for (auto _ : state) {
    t += util::kSubframe;
    for (auto& x : obs) x.sf_index = t / util::kSubframe;
    est.on_observations(t, obs, nullptr);
    benchmark::DoNotOptimize(est.available_capacity(t));
  }
  state.SetLabel("3-cell estimator update + Eqn 3 readout per iteration");
}
BENCHMARK(BM_CapacityEstimatorUpdate);

void BM_RateTranslatorLookup(benchmark::State& state) {
  pbe::RateTranslator tr;
  double cp = 10000;
  for (auto _ : state) {
    cp = cp > 190000 ? 10000 : cp + 37;
    benchmark::DoNotOptimize(tr.to_transport(cp, 1e-6));
  }
  state.SetLabel("Eqn 5 translation via LUT (paper speeds this up the same way)");
}
BENCHMARK(BM_RateTranslatorLookup);

void BM_FairShareScheduler(benchmark::State& state) {
  mac::FairShareScheduler sched;
  std::vector<mac::SchedRequest> reqs;
  for (int u = 0; u < static_cast<int>(state.range(0)); ++u) {
    reqs.push_back(mac::SchedRequest{static_cast<mac::UeId>(u + 1),
                                     50000 + u * 1000, 1000.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.allocate(100, reqs));
  }
}
BENCHMARK(BM_FairShareScheduler)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

// With --json <path> the binary runs a machine-readable throughput mode
// instead of google-benchmark: M scenario replications fanned out on the
// pool (the CI regression gate's primary signal) plus a Viterbi
// micro-record, written through the shared Reporter. Without --json it
// falls through to the normal google-benchmark suite.
int main(int argc, char** argv) {
  bench::Reporter rep("bench_micro", argc, argv);
  if (rep.json_enabled()) {
    constexpr std::size_t kReps = 8;
    bench::WallTimer wt;
    const auto results = par::parallel_map(kReps, [&](std::size_t j) {
      return sim::run_location(sim::location(static_cast<int>(j % 4)), "pbe",
                               4 * util::kSecond);
    });
    std::uint64_t sfs = 0, attempts = 0;
    for (const auto& r : results) {
      sfs += r.sim_cell_subframes;
      attempts += r.decode_candidates;
    }
    rep.add("scenario_8rep", wt.ms(),
            static_cast<double>(sfs) / (wt.ms() / 1000.0), attempts);

    // Viterbi decode of an AL4 block; subframes_per_sec = decodes/sec here.
    phy::Dci d;
    d.rnti = 0x222;
    d.format = phy::DciFormat::kFormat1;
    d.n_prbs = 30;
    d.mcs = {10, 1};
    const auto msg = phy::encode_dci(d);
    const auto block = phy::rate_match(phy::conv_encode(msg), 4 * 72);
    constexpr std::uint64_t kDecodes = 2000;
    bench::WallTimer vt;
    for (std::uint64_t i = 0; i < kDecodes; ++i) {
      const auto out = phy::conv_decode(block, msg.size());
      benchmark::DoNotOptimize(out);
    }
    rep.add("viterbi_al4", vt.ms(),
            static_cast<double>(kDecodes) / (vt.ms() / 1000.0), kDecodes);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
