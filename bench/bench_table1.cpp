// Table 1: summary throughput speedup and delay reduction of PBE-CC vs
// BBR, Verus and Copa, averaged over the 25 busy and 15 idle stationary
// links of the location set (§6.3.1).
//
// Speedup  = mean over locations of (tput_PBE / tput_other).
// Delay reduction = mean over locations of (delay_other / delay_PBE),
// reported for the 95th percentile and the average delay.
#include <map>

#include "bench/bench_common.h"
#include "sim/location.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_table1", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 12);
  bench::header("Table 1: PBE-CC vs BBR / Verus / Copa over 40 locations");
  std::printf("(flow length %.0f s per location; paper uses 20 s)\n",
              util::to_seconds(len));

  const std::vector<std::string> others = {"bbr", "verus", "copa"};
  struct Acc {
    util::OnlineStats speedup, p95_red, avg_red;
  };
  // [algo][busy?]
  std::map<std::string, std::map<bool, Acc>> acc;
  util::OnlineStats inet_frac_busy, inet_frac_idle;

  // 40 locations x 4 algorithms (pbe + 3 others), all independent: one
  // flat pool fan-out, then the per-location ratios merge in order.
  std::vector<std::string> all = {"pbe"};
  all.insert(all.end(), others.begin(), others.end());
  bench::WallTimer wt;
  const auto results = par::parallel_map(
      static_cast<std::size_t>(sim::kNumLocations) * all.size(),
      [&](std::size_t j) {
        return sim::run_location(
            sim::location(static_cast<int>(j / all.size())),
            all[j % all.size()], len);
      });
  std::uint64_t sim_sfs = 0, attempts = 0;
  for (const auto& r : results) {
    sim_sfs += r.sim_cell_subframes;
    attempts += r.decode_candidates;
  }
  rep.add("40loc_x_4algo", wt.ms(),
          static_cast<double>(sim_sfs) / (wt.ms() / 1000.0), attempts);

  for (int i = 0; i < sim::kNumLocations; ++i) {
    const auto loc = sim::location(i);
    const auto base = static_cast<std::size_t>(i) * all.size();
    const auto& pbe = results[base];
    (loc.busy ? inet_frac_busy : inet_frac_idle)
        .add(pbe.internet_state_fraction);
    for (std::size_t k = 0; k < others.size(); ++k) {
      const auto& r = results[base + 1 + k];
      auto& a = acc[others[k]][loc.busy];
      if (r.avg_tput_mbps > 0.01) a.speedup.add(pbe.avg_tput_mbps / r.avg_tput_mbps);
      if (pbe.p95_delay_ms > 0.01) a.p95_red.add(r.p95_delay_ms / pbe.p95_delay_ms);
      if (pbe.avg_delay_ms > 0.01) a.avg_red.add(r.avg_delay_ms / pbe.avg_delay_ms);
    }
  }

  std::printf("\n  %-8s %-6s  %18s  %22s  %18s\n", "Scheme", "Links",
              "PBE tput speedup", "95th pct delay reduction",
              "avg delay reduction");
  for (const auto& algo : others) {
    for (const bool busy : {true, false}) {
      const auto& a = acc[algo][busy];
      std::printf("  %-8s %-6s  %15.2fx  %21.2fx  %17.2fx\n", algo.c_str(),
                  busy ? "busy" : "idle", a.speedup.mean(), a.p95_red.mean(),
                  a.avg_red.mean());
    }
  }
  std::printf("\n  time in Internet-bottleneck state (PBE): busy %.0f%%, "
              "idle %.0f%%  (paper: 18%% / 4%%)\n",
              100 * inet_frac_busy.mean(), 100 * inet_frac_idle.mean());
  std::printf("\n  Paper (Table 1): BBR busy 1.04x/1.54x/1.39x, idle 1.10x/2.07x/1.84x;\n"
              "                   Verus busy 1.25x/3.97x/2.53x, idle 2.01x/3.44x/2.67x;\n"
              "                   Copa busy 10.35x/0.80x/0.80x, idle 12.94x/0.79x/0.82x.\n");
  return 0;
}
