// Figure 11 (micro-benchmark: cell status):
//  (a) users detected per hour across a day, for a 20 MHz and a 10 MHz cell;
//  (b) CDF of detected users' physical data rate (Mbit/s per PRB).
//
// Substitution note (DESIGN.md): the paper decodes two live cells for 24
// hours. We synthesize a diurnal load profile and simulate a 20-second
// slice per hour, scaling unique-user counts to the hour; the 10 MHz cell
// is switched off between midnight and 3 am as in the paper's data.
#include <cmath>
#include <set>

#include "bench/bench_common.h"
#include "decoder/blind_decoder.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

// Relative load over the day, peaking through the 12:00-20:00 block.
double diurnal(int hour) {
  return 0.15 + 0.85 * std::exp(-std::pow((hour - 16.0) / 6.0, 2.0));
}

struct HourResult {
  int users_scaled = 0;
  std::vector<double> rates_mbps_per_prb;
};

HourResult simulate_hour(double cell_mhz, int hour, bool cell_off) {
  HourResult res;
  if (cell_off) return res;
  const double load = diurnal(hour);

  sim::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(hour * 97 + static_cast<int>(cell_mhz));
  cfg.cells = {{cell_mhz, 0.3 * load}};
  sim::Scenario s{cfg};
  sim::BackgroundSpec bg;
  bg.n_users = static_cast<int>(2 + 8 * load);
  bg.sessions_per_sec = 2.5 * load;
  bg.rate_lo = 1e6;
  bg.rate_hi = 12e6;
  bg.rssi_sigma_db = 9.0;  // diverse population incl. weak users
  s.add_background(bg);

  // Count distinct RNTIs on the control channel; record their Rw.
  std::set<phy::Rnti> users;
  decoder::BlindDecoder probe{phy::CellConfig{1, cell_mhz}};
  s.bs().add_pdcch_observer([&](const phy::PdcchSubframe& sf) {
    for (const auto& dci : probe.decode(sf)) {
      if (!dci.is_downlink()) continue;
      users.insert(dci.rnti);
      res.rates_mbps_per_prb.push_back(dci.mcs.bits_per_prb() / 1000.0);
    }
  });
  const util::Duration slice = 20 * util::kSecond;
  s.run_until(slice);
  // Scale unique users in the slice to the hour: sessions arrive as a
  // Poisson process, so uniques scale ~linearly until saturation.
  res.users_scaled = static_cast<int>(static_cast<double>(users.size()) *
                                      std::sqrt(3600.0 / util::to_seconds(slice)));
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig11", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  bench::header("Figure 11: cell status over a day (synthetic diurnal load)");

  // Each (cell, hour) slice is an independent 20 s simulation: fan the
  // whole day out on the pool.
  std::vector<int> hours;
  for (int hour = 0; hour < 24; hour += quick ? 4 : 1) hours.push_back(hour);
  bench::WallTimer wt;
  const auto day = par::parallel_map(2 * hours.size(), [&](std::size_t j) {
    const int hour = hours[j % hours.size()];
    return j < hours.size() ? simulate_hour(20.0, hour, false)
                            : simulate_hour(10.0, hour, hour < 3);  // off 0-3am
  });
  // 2 cells x |hours| slices x 20 s, 1 ms subframes (10 MHz off 0-3 am).
  rep.add(quick ? "diurnal_quick" : "diurnal_24h", wt.ms(),
          static_cast<double>(2 * hours.size()) * 20000.0 / (wt.ms() / 1000.0),
          0);

  util::SampleSet rates20, rates10;
  std::printf("\n  hour   users(20MHz)  users(10MHz)\n");
  for (std::size_t i = 0; i < hours.size(); ++i) {
    const auto& r20 = day[i];
    const auto& r10 = day[hours.size() + i];
    for (double r : r20.rates_mbps_per_prb) rates20.add(r);
    for (double r : r10.rates_mbps_per_prb) rates10.add(r);
    std::printf("  %4d   %12d  %12d%s\n", hours[i], r20.users_scaled,
                r10.users_scaled, hours[i] < 3 ? "   (10 MHz cell off)" : "");
  }

  std::printf("\n  (b) physical data rate of detected users, Mbit/s/PRB "
              "(CDF deciles):\n");
  bench::print_cdf("    20 MHz cell", rates20);
  bench::print_cdf("    10 MHz cell", rates10);
  auto frac_below = [](const util::SampleSet& s, double thr) {
    int n = 0;
    for (double v : s.samples()) n += v < thr ? 1 : 0;
    return s.count() ? 100.0 * n / static_cast<double>(s.count()) : 0.0;
  };
  std::printf("    below 0.9 Mbit/s/PRB (half of max): %.0f%% (20 MHz), "
              "%.0f%% (10 MHz)\n",
              frac_below(rates20, 0.9), frac_below(rates10, 0.9));
  std::printf("\n  Paper shape: user counts peak through hours 12-20 and\n"
              "  collapse overnight; a large majority of users sit below half\n"
              "  of the 1.8 Mbit/s/PRB ceiling (77%%/72%% in the paper).\n");
  return 0;
}
