// Figure 17: PBE-CC vs BBR along the same mobility trajectory, as a time
// series — median throughput and delay per two-second interval.
#include <map>

#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

struct Series {
  std::map<int, util::SampleSet> tput;   // per 2 s bucket: window tputs
  std::map<int, util::SampleSet> delay;  // per 2 s bucket: delays
};

Series run(const std::string& algo) {
  using util::kSecond;
  sim::ScenarioConfig cfg;
  cfg.seed = 101;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.cell_indices = {0, 1};
  ue.trace = phy::MobilityTrace({{0, -85},
                                 {13 * kSecond, -85},
                                 {26 * kSecond, -105},
                                 {30 * kSecond, -85},
                                 {40 * kSecond, -85}});
  s.add_ue(ue);
  sim::FlowSpec fs;
  fs.algo = algo;
  fs.start = 100 * util::kMillisecond;
  fs.stop = 40 * kSecond;
  const int f = s.add_flow(fs);

  Series out;
  // 200 ms byte counters -> throughput samples, bucketed by 2 s interval.
  struct Acc {
    std::int64_t bytes = 0;
    util::Time win_start = 0;
  };
  auto acc = std::make_shared<Acc>();
  s.sender(f);  // ensure flow exists
  // Reuse the receiver's delivery observer via stats? Use our own: attach
  // a second observer through FlowStats samples after the run instead:
  s.run_until(fs.stop);
  s.stats(f).finish(fs.stop);
  // Windows are 100 ms each, in order: map window index -> 2 s bucket.
  const auto wins = s.stats(f).window_tputs_mbps().samples();
  for (std::size_t i = 0; i < wins.size(); ++i) {
    out.tput[static_cast<int>(i / 20)].add(wins[i]);
  }
  const auto dl = s.stats(f).delays_ms().samples();
  // Delay samples arrive ~uniformly in time; bucket proportionally.
  for (std::size_t i = 0; i < dl.size(); ++i) {
    const int bucket = static_cast<int>(20.0 * static_cast<double>(i) /
                                        static_cast<double>(dl.size()));
    out.delay[bucket].add(dl[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig17", argc, argv);
  bench::header("Figure 17: PBE-CC vs BBR time series along the mobility walk");
  bench::WallTimer wt;
  const auto series = par::parallel_map(
      2, [&](std::size_t j) { return run(j == 0 ? "pbe" : "bbr"); });
  auto pbe = series[0];
  auto bbr = series[1];
  // 2 algos x 40 s x two cells, 1 ms subframes.
  rep.add("mobility_timeseries", wt.ms(), 160000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n            ---- PBE-CC ----      ----- BBR -----\n");
  std::printf("  t(s)      tput(Mb)  delay(ms)   tput(Mb)  delay(ms)\n");
  for (int b = 0; b < 20; ++b) {
    std::printf("  %2d-%2d  %10.1f %10.1f %10.1f %10.1f %s\n", 2 * b, 2 * b + 2,
                pbe.tput[b].percentile(50), pbe.delay[b].percentile(50),
                bbr.tput[b].percentile(50), bbr.delay[b].percentile(50),
                (2 * b >= 13 && 2 * b < 30) ? "| moving" : "");
  }
  std::printf("\n  Paper shape: both track the capacity dip (13-26 s); BBR's\n"
              "  delay spikes on the signal drop and again when capacity\n"
              "  recovers (over-estimation), PBE-CC's delay stays flat.\n");
  return 0;
}
