// Long-horizon soak driver (DESIGN.md §10): runs the pipeline and MAC soak
// scenarios from src/sim/soak.h, prints their reports, and exits non-zero
// if either run recorded an invariant violation or a harness check failed.
//
//   --subframes N       pipeline soak length (default 2,000,000)
//   --mac-subframes N   MAC soak length (default 200,000)
//   --metrics <path>    write the merged soak report JSON (CI artifact)
//   --json <path>       standard bench records (bench_gate.py schema)
//   --abort             abort at the first invariant violation (debugging)
//   --telemetry <path>  sample the pipeline soak into a .tsv.pbt telemetry
//                       recording (est.*/decode.*/check.* series)
//   --strict-checks     exit nonzero on any invariant violation even if
//                       the harness checks passed (redundant today — kept
//                       symmetric with run_experiment)
//
// The CI soak-smoke job runs this at 100k / 20k subframes with
// -DPBECC_CHECK=ON and ASan; the acceptance run is the full default length.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "check/check.h"
#include "sim/soak.h"
#include "tel/file.h"
#include "tel/sampler.h"

using namespace pbecc;

namespace {

void print_report(const char* name, const sim::SoakReport& r, double wall_ms) {
  std::printf("\n--- %s: %s ---\n", name, r.ok() ? "PASS" : "FAIL");
  std::printf("  subframes            %lld  (%.1f k sf/s)\n",
              static_cast<long long>(r.subframes),
              r.subframes / wall_ms);  // k sf/s == sf/ms
  std::printf("  invariant violations %llu%s%s\n",
              static_cast<unsigned long long>(r.invariant_violations),
              r.violation_digest.empty() ? "" : "  ",
              r.violation_digest.c_str());
  std::printf("  churn=%llu handovers=%llu reconfigs=%llu decodes=%llu "
              "delivered=%llu\n",
              static_cast<unsigned long long>(r.churn_events),
              static_cast<unsigned long long>(r.handovers),
              static_cast<unsigned long long>(r.reconfigs),
              static_cast<unsigned long long>(r.decode_attempts),
              static_cast<unsigned long long>(r.delivered_packets));
  std::printf("  high-water: est_cells=%zu trk_users=%zu trk_hist=%zu "
              "ues=%zu ue_cells=%zu\n",
              r.max_estimator_cells, r.max_tracker_users,
              r.max_tracker_history, r.max_ues, r.max_ue_cells);
  std::printf("  max WindowedMean drift %.3e (bound 1e-9)\n", r.max_mean_drift);
  for (const auto& f : r.failures) std::printf("  FAIL: %s\n", f.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_soak", argc, argv);

  sim::PipelineSoakConfig pcfg;
  sim::MacSoakConfig mcfg;
  std::string metrics_path;
  std::string telemetry_path;
  bool strict_checks = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--subframes") == 0 && i + 1 < argc) {
      pcfg.subframes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--mac-subframes") == 0 && i + 1 < argc) {
      mcfg.subframes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (std::strcmp(argv[i], "--strict-checks") == 0) {
      strict_checks = true;
    } else if (std::strcmp(argv[i], "--abort") == 0) {
      check::set_abort_on_violation(true);
    }
  }

  std::unique_ptr<tel::Sampler> telemetry;
  if (!telemetry_path.empty()) {
    if (!tel::kCompiled) {
      std::fprintf(stderr, "warning: built with -DPBECC_TEL=OFF; "
                           "--telemetry output will be empty\n");
    }
    telemetry = std::make_unique<tel::Sampler>();
    pcfg.telemetry = telemetry.get();
  }

  bench::header("Soak: decode->fusion->tracking->estimation pipeline");
  std::printf("subframes=%lld cells=%d rnti_pool=%d (deep checks %s)\n",
              static_cast<long long>(pcfg.subframes), pcfg.n_cells,
              pcfg.rnti_pool, check::kDeep ? "ON" : "off");
  bench::WallTimer pt;
  const sim::SoakReport prep = sim::run_pipeline_soak(pcfg);
  const double p_ms = pt.ms();
  print_report("pipeline soak", prep, p_ms);
  reporter.add("pipeline_soak", p_ms, prep.subframes / (p_ms / 1000.0),
               prep.decode_attempts);

  bench::header("Soak: base station + UE churn + handover storms");
  std::printf("subframes=%lld cells=%d fg=%d bg_pool=%d\n",
              static_cast<long long>(mcfg.subframes), mcfg.n_cells,
              mcfg.fg_ues, mcfg.bg_ue_pool);
  bench::WallTimer mt;
  const sim::SoakReport mrep = sim::run_mac_soak(mcfg);
  const double m_ms = mt.ms();
  print_report("mac soak", mrep, m_ms);
  reporter.add("mac_soak", m_ms, mrep.subframes / (m_ms / 1000.0), 0);

  if (!metrics_path.empty()) {
    FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (!f) {
      std::perror("--metrics open");
      return 2;
    }
    std::fprintf(f, "{\"pipeline\": %s,\n \"mac\": %s}\n",
                 prep.to_json().c_str(), mrep.to_json().c_str());
    std::fclose(f);
  }

  if (telemetry) {
    std::string err;
    if (!tel::write_file(telemetry->recorder(), telemetry_path, &err)) {
      std::fprintf(stderr, "telemetry write failed: %s\n", err.c_str());
      return 2;
    }
    std::printf("telemetry: %llu samples in %zu series -> %s\n",
                static_cast<unsigned long long>(
                    telemetry->recorder().total_samples()),
                telemetry->recorder().series().size(), telemetry_path.c_str());
  }

  // One-line invariant summary across both soaks (check totals are reset
  // per soak, so sum the reports rather than re-reading the registry).
  const std::uint64_t violations =
      prep.invariant_violations + mrep.invariant_violations;
  if (violations == 0) {
    std::fprintf(stderr, "check: 0 invariant violations\n");
  } else {
    std::fprintf(stderr, "check: %llu invariant violations (%s%s%s)\n",
                 static_cast<unsigned long long>(violations),
                 prep.violation_digest.c_str(),
                 !prep.violation_digest.empty() && !mrep.violation_digest.empty()
                     ? "; "
                     : "",
                 mrep.violation_digest.c_str());
  }

  const bool ok =
      prep.ok() && mrep.ok() && !(strict_checks && violations > 0);
  std::printf("\nsoak result: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
