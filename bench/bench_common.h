// Shared helpers for the reproduction benches: argument handling and
// table/CDF printing in the shape the paper reports.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/time.h"

namespace pbecc::bench {

// Flow length for end-to-end benches: `--seconds N` overrides the default
// (the paper uses 20 s flows; shorter runs keep the full suite quick).
inline util::Duration flow_seconds(int argc, char** argv,
                                   int default_seconds) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0) {
      return std::atoi(argv[i + 1]) * util::kSecond;
    }
  }
  return default_seconds * util::kSecond;
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// Order statistics row in the paper's Fig 13/14 style.
inline void print_order_stats(const char* label, const util::SampleSet& s) {
  std::printf("%-8s p10=%8.1f p25=%8.1f p50=%8.1f p75=%8.1f p90=%8.1f\n",
              label, s.percentile(10), s.percentile(25), s.percentile(50),
              s.percentile(75), s.percentile(90));
}

// Compact CDF: value at each decile.
inline void print_cdf(const char* label, const util::SampleSet& s) {
  std::printf("%-22s:", label);
  for (int p = 10; p <= 100; p += 10) {
    std::printf(" %7.1f", s.percentile(p));
  }
  std::printf("  (deciles 10..100)\n");
}

}  // namespace pbecc::bench
