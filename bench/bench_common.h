// Shared helpers for the reproduction benches: argument handling,
// table/CDF printing in the shape the paper reports, and the
// machine-readable JSON reporter behind every bench's `--json <path>`
// (records consumed by bench/bench_gate.py and the CI bench-smoke job).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "par/thread_pool.h"
#include "util/stats.h"
#include "util/time.h"

namespace pbecc::bench {

// Flow length for end-to-end benches: `--seconds N` overrides the default
// (the paper uses 20 s flows; shorter runs keep the full suite quick).
inline util::Duration flow_seconds(int argc, char** argv,
                                   int default_seconds) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0) {
      return std::atoi(argv[i + 1]) * util::kSecond;
    }
  }
  return default_seconds * util::kSecond;
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// Order statistics row in the paper's Fig 13/14 style.
inline void print_order_stats(const char* label, const util::SampleSet& s) {
  std::printf("%-8s p10=%8.1f p25=%8.1f p50=%8.1f p75=%8.1f p90=%8.1f\n",
              label, s.percentile(10), s.percentile(25), s.percentile(50),
              s.percentile(75), s.percentile(90));
}

// Compact CDF: value at each decile.
inline void print_cdf(const char* label, const util::SampleSet& s) {
  std::printf("%-22s:", label);
  for (int p = 10; p <= 100; p += 10) {
    std::printf(" %7.1f", s.percentile(p));
  }
  std::printf("  (deciles 10..100)\n");
}

// Wall-clock stopwatch for bench records.
class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

// Machine-readable bench reporter. Every bench constructs one from argv:
//
//   --json <path>   write a JSON array of records on exit
//   --threads N     size the pbecc::par default pool (0 = hardware)
//
// Each record is {"schema_version", "bench", "config", "wall_ms",
// "subframes_per_sec", "decode_attempts", "threads"}, keys always in that
// order — the schema bench/bench_gate.py and the CI bench-smoke job
// consume. Benches call add() once per measured configuration (pass 0 for
// fields that do not apply); the file is written by write() or the
// destructor, whichever comes first.
class Reporter {
 public:
  Reporter(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        json_path_ = argv[i + 1];
      } else if (std::strcmp(argv[i], "--threads") == 0) {
        par::set_default_threads(std::atoi(argv[i + 1]));
      }
    }
  }
  ~Reporter() { write(); }
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  bool json_enabled() const { return !json_path_.empty(); }

  void add(const std::string& config, double wall_ms,
           double subframes_per_sec, std::uint64_t decode_attempts) {
    Record r;
    r.config = config;
    r.wall_ms = wall_ms;
    r.subframes_per_sec = subframes_per_sec;
    r.decode_attempts = decode_attempts;
    records_.push_back(std::move(r));
  }

  bool write() {
    if (json_path_.empty() || written_) return true;
    written_ = true;
    FILE* f = std::fopen(json_path_.c_str(), "w");
    if (!f) {
      std::perror("bench --json open");
      return false;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "  {\"schema_version\": 1, \"bench\": \"%s\", "
                   "\"config\": \"%s\", "
                   "\"wall_ms\": %.3f, \"subframes_per_sec\": %.1f, "
                   "\"decode_attempts\": %llu, \"threads\": %d}%s\n",
                   bench_.c_str(), escape(r.config).c_str(), r.wall_ms,
                   r.subframes_per_sec,
                   static_cast<unsigned long long>(r.decode_attempts),
                   par::default_threads(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    return std::fclose(f) == 0;
  }

 private:
  struct Record {
    std::string config;
    double wall_ms = 0;
    double subframes_per_sec = 0;
    std::uint64_t decode_attempts = 0;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string bench_;
  std::string json_path_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace pbecc::bench
