// NR slot-rate bench (DESIGN.md §16): the mixed LTE+NR location scenario
// at 30 kHz and 120 kHz numerologies, reporting simulated cell-slots per
// wall-clock second. A 120 kHz secondary runs eight slot ticks per master
// subframe — PDCCH build, blind decode, fusion and estimation all step at
// that rate — so this is the "does scalable numerology stay affordable"
// record: the CI nr-smoke job gates the nr120 slot rate against
// bench/baseline.json via bench_gate.py compare (the rate rides in the
// subframes_per_sec field; one slot is one tick of a cell clock).
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "sim/location.h"

namespace pbecc {
namespace {

struct NrRun {
  double wall_ms = 0;
  double slots_per_sec = 0;
  std::uint64_t decode_attempts = 0;
};

NrRun run_nr(int mu, util::Duration len) {
  auto loc = sim::location(30);  // 3-carrier profile: LTE + two NR cells
  loc.seed = 4242;
  loc.nr_numerology = mu;
  const auto r = sim::run_location(loc, "pbe", len);
  NrRun out;
  out.wall_ms = r.wall_ms;
  out.decode_attempts = r.decode_candidates;
  // Work metric: cell-slot ticks. The LTE primary ticks once per ms, each
  // NR secondary 2^mu times per ms.
  const double sim_ms =
      static_cast<double>(r.sim_cell_subframes) / 3.0;  // 3 carriers
  const double slots_per_ms = 1.0 + 2.0 * static_cast<double>(1 << mu);
  out.slots_per_sec = sim_ms * slots_per_ms * 1000.0 / r.wall_ms;
  return out;
}

}  // namespace
}  // namespace pbecc

int main(int argc, char** argv) {
  using namespace pbecc;
  bench::Reporter rep("bench_nr", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 2);
  bench::header("NR slot throughput: mixed LTE+NR carrier aggregation");
  for (const int mu : {1, 3}) {
    const auto r = run_nr(mu, len);
    std::printf("  mu=%d (%3d kHz)  wall=%9.1f ms  %12.0f cell-slots/s  "
                "%llu decode attempts\n",
                mu, 15 << mu, r.wall_ms, r.slots_per_sec,
                static_cast<unsigned long long>(r.decode_attempts));
    rep.add("nr" + std::to_string(15 << mu), r.wall_ms, r.slots_per_sec,
            r.decode_attempts);
  }
  return rep.write() ? 0 : 1;
}
