// Shard-scaling bench (DESIGN.md §15): a city-scale scenario — 64 cells
// in 16 cell-clusters, one real flow per cluster plus aggregate
// background populations — stepped at shards {1, 4}. Reports wall time
// and cell-subframes/s per config via --json; the CI bench-smoke job
// gates the 4-shard record at >= 2.5x the 1-shard record with
// `bench_gate.py speedup --metric subframes` (and the binary itself
// asserts the ratio when the host has the cores to make it meaningful).
//
// The contract under test is the tentpole one: shards is purely a
// parallelism knob, so both configs simulate the byte-identical run (the
// determinism suite pins that); this bench pins that the knob actually
// buys wall-clock at city scale.
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "sim/scenario.h"

namespace pbecc {
namespace {

constexpr int kCells = 64;
constexpr int kCellsPerCluster = 4;
constexpr int kClusters = kCells / kCellsPerCluster;

// Wall-clock ms to simulate `len` of the 64-cell city at `shards` workers.
double run_city(int shards, util::Duration len) {
  sim::set_default_shards(shards);
  sim::ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.cells.clear();
  for (int c = 0; c < kCells; ++c) {
    sim::CellSpec cell;
    cell.control_users_per_subframe = 0.2;
    cell.cluster = c / kCellsPerCluster;
    cfg.cells.push_back(cell);
  }
  sim::Scenario s{cfg};
  for (int cl = 0; cl < kClusters; ++cl) {
    const auto first = static_cast<std::size_t>(cl * kCellsPerCluster);
    sim::UeSpec ue;
    ue.id = static_cast<mac::UeId>(cl + 1);
    ue.cell_indices = {first, first + 1};
    s.add_ue(ue);
    sim::FlowSpec fs;
    fs.algo = "cubic";
    fs.ue = ue.id;
    fs.stop = len;
    s.add_flow(fs);
    sim::AggregateBackgroundSpec agg;
    agg.cell_index = first + 2;
    agg.traffic.sessions_per_sec = 40;
    s.add_background_aggregate(agg);
  }
  bench::WallTimer t;
  s.run_until(len);
  const double ms = t.ms();
  sim::set_default_shards(1);
  return ms;
}

}  // namespace
}  // namespace pbecc

int main(int argc, char** argv) {
  using namespace pbecc;
  bench::Reporter rep("bench_shard", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 2);
  bench::header("Shard scaling: 64 cells / 16 clusters (DESIGN.md §15)");
  // Work metric: cell-subframes simulated (cells x 1 ms ticks), so the
  // rate is comparable across machines and run lengths.
  const double cell_subframes = util::to_seconds(len) * 1000.0 * kCells;

  double serial_sps = 0;
  for (const int shards : {1, 4}) {
    const double ms = run_city(shards, len);
    const double sps = cell_subframes * 1000.0 / ms;
    std::printf("  shards=%d  wall=%9.1f ms  %12.0f cell-subframes/s\n",
                shards, ms, sps);
    rep.add("shards" + std::to_string(shards), ms, sps, 0);
    if (shards == 1) {
      serial_sps = sps;
    } else {
      const double ratio = sps / serial_sps;
      std::printf("  scaling: %.2fx at %d shards\n", ratio, shards);
      // Only meaningful with real cores behind the shard workers; CI's
      // bench_gate speedup check enforces the same bound from the JSON.
      if (std::thread::hardware_concurrency() >= 4 && ratio < 2.5) {
        std::fprintf(stderr,
                     "FAIL: expected >= 2.5x cell-subframes/s at 4 shards, "
                     "got %.2fx\n",
                     ratio);
        return 1;
      }
    }
  }
  return rep.write() ? 0 : 1;
}
