// Figure 20: one device, two concurrent connections to different servers
// (different RTTs). Per-flow throughput and delay for all eight
// algorithms; PBE-CC splits the estimated capacity evenly, others may not.
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig20", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 20);
  bench::header("Figure 20: two concurrent connections from one device");

  struct Row {
    double ta = 0, da = 0, tb = 0, db = 0, jain = 0;
  };
  const auto algos = sim::all_algorithms();
  bench::WallTimer wt;
  const auto rows = par::parallel_map(algos.size(), [&](std::size_t j) {
    sim::ScenarioConfig cfg;
    cfg.seed = 151;
    cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
    sim::Scenario s{cfg};
    sim::UeSpec ue;
    ue.cell_indices = {0, 1};
    s.add_ue(ue);

    sim::FlowSpec f1;
    f1.algo = algos[j];
    f1.path.one_way_delay = 24 * util::kMillisecond;
    f1.stop = f1.start + len;
    sim::FlowSpec f2 = f1;
    f2.path.one_way_delay = 28 * util::kMillisecond;
    const int a = s.add_flow(f1);
    const int b = s.add_flow(f2);
    s.run_until(f1.stop + 200 * util::kMillisecond);
    s.stats(a).finish(f1.stop);
    s.stats(b).finish(f2.stop);

    const double ta = s.stats(a).avg_tput_mbps();
    const double tb = s.stats(b).avg_tput_mbps();
    const double shares[] = {ta, tb};
    return Row{ta, s.stats(a).median_delay_ms(), tb,
               s.stats(b).median_delay_ms(), util::jain_index(shares)};
  });
  rep.add("two_flows_8algo", wt.ms(),
          static_cast<double>(algos.size()) * 2.0 *
              (util::to_seconds(len) + 0.2) * 1000.0 / (wt.ms() / 1000.0),
          0);

  std::printf("\n  %-8s  flow1: tput(Mb) p50-d(ms)   flow2: tput(Mb) "
              "p50-d(ms)   balance\n", "algo");
  for (std::size_t j = 0; j < algos.size(); ++j) {
    const auto& r = rows[j];
    std::printf("  %-8s  %14.1f %9.1f   %14.1f %9.1f   Jain %.3f\n",
                algos[j].c_str(), r.ta, r.da, r.tb, r.db, r.jain);
  }
  std::printf("\n  Paper shape: PBE-CC gives both flows similar throughput at\n"
              "  low delay (26/28 Mbit/s, 48/56 ms); BBR splits unevenly\n"
              "  (10 vs 35 Mbit/s in the paper).\n");
  return 0;
}
