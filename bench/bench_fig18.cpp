// Figure 18: controlled competition.
//
// A 40-second flow on an otherwise idle cell; every 8 seconds a second
// device starts a 4-second fixed-rate 60 Mbit/s flow (the paper's MIX3
// competitor). Throughput and delay per algorithm.
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig18", argc, argv);
  bench::header("Figure 18: on-off 60 Mbit/s competitor every 8 s (4 s bursts)");

  struct Row {
    double tput = 0, avg = 0, p95 = 0, p50 = 0;
  };
  const auto algos = sim::all_algorithms();
  bench::WallTimer wt;
  const auto rows = par::parallel_map(algos.size(), [&](std::size_t j) {
    sim::ScenarioConfig cfg;
    cfg.seed = 131;
    cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
    sim::Scenario s{cfg};
    for (mac::UeId id = 1; id <= 2; ++id) {
      sim::UeSpec ue;
      ue.id = id;
      ue.cell_indices = {0, 1};
      s.add_ue(ue);
    }
    sim::FlowSpec fs;
    fs.algo = algos[j];
    fs.start = 100 * util::kMillisecond;
    fs.stop = 40 * util::kSecond;
    const int f = s.add_flow(fs);
    for (int burst = 0; burst < 5; ++burst) {
      sim::FlowSpec comp;
      comp.algo = "fixed";
      comp.fixed_rate = 60e6;
      comp.ue = 2;
      comp.start = (4 + burst * 8) * util::kSecond;
      comp.stop = comp.start + 4 * util::kSecond;
      if (comp.stop > fs.stop) break;
      s.add_flow(comp);
    }
    s.run_until(fs.stop);
    s.stats(f).finish(fs.stop);
    return Row{s.stats(f).avg_tput_mbps(), s.stats(f).avg_delay_ms(),
               s.stats(f).p95_delay_ms(), s.stats(f).median_delay_ms()};
  });
  // 8 algos x 40 s x two cells, 1 ms subframes.
  rep.add("onoff_competitor_8algo", wt.ms(),
          static_cast<double>(algos.size()) * 80000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n  %-8s %10s %10s %10s %10s\n", "algo", "tput(Mb)",
              "avg-d(ms)", "p95-d(ms)", "p50-d(ms)");
  for (std::size_t j = 0; j < algos.size(); ++j) {
    std::printf("  %-8s %10.1f %10.1f %10.1f %10.1f\n", algos[j].c_str(),
                rows[j].tput, rows[j].avg, rows[j].p95, rows[j].p50);
  }
  std::printf("\n  Paper shape: only PBE-CC combines high throughput with low\n"
              "  delay (paper: 57 Mbit/s at 61/71 ms avg/p95, vs BBR 62 Mbit/s\n"
              "  at 147/227 ms and CUBIC/Verus at ~250/410 ms).\n");
  return 0;
}
