// Capture/replay throughput bench (DESIGN.md §11): records a 3-cell busy
// location live (full MAC + network simulation), then replays the trace
// through the decoder/estimator pipeline alone. The replay rate is the
// pipeline's intrinsic decode throughput — it must beat the live rate,
// which also pays for scheduling, queues and packet events — and the run
// double-checks record→replay digest equality while it is at it.
//
//   bench_replay [--seconds N] [--threads N] [--json out.json]
//
// Corpus mode (DESIGN.md §14, the SIMD decode throughput gate):
//
//   bench_replay --record-corpus FILE.pbt [--seconds N]
//     Record a seed-pinned convolutional-PDCCH run (location 26, the
//     3-cell busy profile) into FILE.pbt and exit. The corpus is fully
//     deterministic: same build => byte-identical file.
//
//   bench_replay --corpus FILE.pbt [--lanes N] [--threads N] [--json out]
//     Replay FILE.pbt twice through fresh pipelines — once with the
//     scalar per-candidate decoder (lanes=1, the pre-batching hot path)
//     and once with the lockstep batch decoder (lanes=N, default 8) —
//     verify the two runs' pipeline digests are identical, and report
//     decode candidates/s for both. bench_gate.py's `speedup` command
//     gates the simd:scalar candidate-throughput ratio in CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "cap/replay.h"
#include "cap/trace_reader.h"
#include "cap/trace_writer.h"
#include "decoder/blind_decoder.h"
#include "sim/location.h"

using namespace pbecc;

namespace {

// Seed-pinned recording of the Viterbi decode corpus: the same 3-cell busy
// location the live/replay bench uses, but with convolutional control
// coding so every candidate pays the full trellis walk.
int record_corpus(const char* path, util::Duration flow_len) {
  bench::header("Viterbi decode corpus recording");
  cap::TraceWriter writer(path);
  cap::PipelineDigest digest;
  sim::CaptureOptions capture{&writer, &digest};
  auto loc = sim::location(26);  // 3-cell busy indoor
  loc.convolutional_pdcch = true;
  const auto live = sim::run_location(loc, "pbe", flow_len, nullptr, 1, capture);
  if (!writer.close()) {
    std::fprintf(stderr, "corpus record failed: %s\n", writer.error().c_str());
    return 1;
  }
  std::printf("corpus: %llu records (%llu bytes) -> %s\n",
              static_cast<unsigned long long>(writer.records_written()),
              static_cast<unsigned long long>(writer.bytes_written()), path);
  std::printf("corpus: %llu decode candidates live, digest obs=0x%016llx "
              "probe=0x%016llx\n",
              static_cast<unsigned long long>(live.decode_candidates),
              static_cast<unsigned long long>(digest.observation_digest()),
              static_cast<unsigned long long>(digest.probe_digest()));
  return 0;
}

struct CorpusRun {
  double wall_ms = 0;
  double sf_per_sec = 0;
  double cand_per_sec = 0;
  std::uint64_t candidates = 0;
  cap::PipelineDigest digest;
  bool ok = false;
};

CorpusRun replay_corpus_once(const char* path, int lanes) {
  CorpusRun out;
  decoder::set_decode_lanes(lanes);
  cap::TraceReader reader(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "corpus open failed: %s\n", reader.error().c_str());
    return out;
  }
  cap::ReplayDriver driver(reader.header(), &out.digest);
  const bench::WallTimer timer;
  const auto stats = driver.run(reader);
  out.wall_ms = timer.ms();
  if (!reader.ok()) {
    std::fprintf(stderr, "corpus replay failed: %s\n", reader.error().c_str());
    return out;
  }
  out.candidates = driver.monitor().total_candidates_tried();
  out.sf_per_sec =
      static_cast<double>(stats.cell_subframes) / (out.wall_ms / 1000.0);
  out.cand_per_sec =
      static_cast<double>(out.candidates) / (out.wall_ms / 1000.0);
  std::printf("%-13s %9.0f candidates/s  (%llu candidates, %.1f ms wall, "
              "%llu batches, %llu early-aborted)\n",
              lanes == 1 ? "corpus_scalar" : "corpus_simd", out.cand_per_sec,
              static_cast<unsigned long long>(out.candidates), out.wall_ms,
              static_cast<unsigned long long>(driver.monitor().total_lane_batches()),
              static_cast<unsigned long long>(driver.monitor().total_early_aborts()));
  out.ok = true;
  return out;
}

// Scalar-vs-lockstep A/B over a recorded corpus. Candidate counts must
// match exactly (same work) and pipeline digests must be byte-identical
// (same results) — only then is the throughput ratio meaningful.
int run_corpus(const char* path, int lanes, bench::Reporter& reporter) {
  bench::header("Viterbi decode corpus throughput (scalar vs lockstep)");
  const CorpusRun scalar = replay_corpus_once(path, 1);
  if (!scalar.ok) return 1;
  const CorpusRun simd = replay_corpus_once(path, lanes);
  if (!simd.ok) return 1;
  reporter.add("corpus_scalar", scalar.wall_ms, scalar.sf_per_sec,
               scalar.candidates);
  reporter.add("corpus_simd", simd.wall_ms, simd.sf_per_sec, simd.candidates);
  if (!(scalar.digest == simd.digest) || scalar.candidates != simd.candidates) {
    std::fprintf(stderr,
                 "EQUIVALENCE MISMATCH: scalar obs=0x%016llx cand=%llu vs "
                 "simd obs=0x%016llx cand=%llu\n",
                 static_cast<unsigned long long>(scalar.digest.observation_digest()),
                 static_cast<unsigned long long>(scalar.candidates),
                 static_cast<unsigned long long>(simd.digest.observation_digest()),
                 static_cast<unsigned long long>(simd.candidates));
    return 1;
  }
  std::printf("equivalence: digests match (obs=0x%016llx), lockstep %.2fx "
              "scalar candidate throughput\n",
              static_cast<unsigned long long>(scalar.digest.observation_digest()),
              simd.cand_per_sec / scalar.cand_per_sec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_replay", argc, argv);
  const util::Duration flow_len = bench::flow_seconds(argc, argv, 6);
  const char* record_path = nullptr;
  const char* corpus_path = nullptr;
  int lanes = decoder::decode_lanes();
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--record-corpus")) {
      record_path = argv[i + 1];
    } else if (!std::strcmp(argv[i], "--corpus")) {
      corpus_path = argv[i + 1];
    } else if (!std::strcmp(argv[i], "--lanes")) {
      lanes = std::atoi(argv[i + 1]);
    }
  }
  if (record_path != nullptr) return record_corpus(record_path, flow_len);
  if (corpus_path != nullptr) return run_corpus(corpus_path, lanes, reporter);

  const char* trace_path = "bench_replay.tmp.pbt";

  bench::header("PDCCH capture/replay throughput");

  // --- Live run, recording.
  cap::TraceWriter writer(trace_path);
  cap::PipelineDigest live_digest;
  sim::CaptureOptions capture{&writer, &live_digest};
  const auto loc = sim::location(26);  // 3-cell busy indoor
  const auto live = sim::run_location(loc, "pbe", flow_len, nullptr, 1, capture);
  if (!writer.close()) {
    std::fprintf(stderr, "record failed: %s\n", writer.error().c_str());
    return 1;
  }
  const double live_sf_per_sec =
      static_cast<double>(live.sim_cell_subframes) / (live.wall_ms / 1000.0);
  std::printf("live_sim: %.0f cell-subframes/s (%.1f ms wall, %llu bytes "
              "recorded)\n",
              live_sf_per_sec, live.wall_ms,
              static_cast<unsigned long long>(writer.bytes_written()));
  reporter.add("live_sim", live.wall_ms, live_sf_per_sec,
               live.decode_candidates);

  // --- Replay.
  cap::TraceReader reader(trace_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "replay open failed: %s\n", reader.error().c_str());
    return 1;
  }
  cap::PipelineDigest replay_digest;
  cap::ReplayDriver driver(reader.header(), &replay_digest);
  const bench::WallTimer timer;
  const auto stats = driver.run(reader);
  const double replay_ms = timer.ms();
  if (!reader.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", reader.error().c_str());
    return 1;
  }
  const double replay_sf_per_sec =
      static_cast<double>(stats.cell_subframes) / (replay_ms / 1000.0);
  std::printf("replay:   %.0f cell-subframes/s (%.1f ms wall, %llu batches)\n",
              replay_sf_per_sec, replay_ms,
              static_cast<unsigned long long>(stats.batches));
  reporter.add("replay", replay_ms, replay_sf_per_sec,
               driver.monitor().total_candidates_tried());

  std::remove(trace_path);

  // --- Fidelity gate: the replayed pipeline must be byte-identical.
  if (!(live_digest == replay_digest)) {
    std::fprintf(stderr,
                 "FIDELITY MISMATCH: live obs=0x%016llx probe=0x%016llx vs "
                 "replay obs=0x%016llx probe=0x%016llx\n",
                 static_cast<unsigned long long>(live_digest.observation_digest()),
                 static_cast<unsigned long long>(live_digest.probe_digest()),
                 static_cast<unsigned long long>(replay_digest.observation_digest()),
                 static_cast<unsigned long long>(replay_digest.probe_digest()));
    return 1;
  }
  std::printf("fidelity: digests match (obs=0x%016llx probe=0x%016llx), "
              "replay %.1fx faster than live\n",
              static_cast<unsigned long long>(live_digest.observation_digest()),
              static_cast<unsigned long long>(live_digest.probe_digest()),
              replay_sf_per_sec / live_sf_per_sec);
  return 0;
}
