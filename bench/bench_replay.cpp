// Capture/replay throughput bench (DESIGN.md §11): records a 3-cell busy
// location live (full MAC + network simulation), then replays the trace
// through the decoder/estimator pipeline alone. The replay rate is the
// pipeline's intrinsic decode throughput — it must beat the live rate,
// which also pays for scheduling, queues and packet events — and the run
// double-checks record→replay digest equality while it is at it.
//
//   bench_replay [--seconds N] [--threads N] [--json out.json]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "cap/replay.h"
#include "cap/trace_reader.h"
#include "cap/trace_writer.h"
#include "sim/location.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_replay", argc, argv);
  const util::Duration flow_len = bench::flow_seconds(argc, argv, 6);
  const char* trace_path = "bench_replay.tmp.pbt";

  bench::header("PDCCH capture/replay throughput");

  // --- Live run, recording.
  cap::TraceWriter writer(trace_path);
  cap::PipelineDigest live_digest;
  sim::CaptureOptions capture{&writer, &live_digest};
  const auto loc = sim::location(26);  // 3-cell busy indoor
  const auto live = sim::run_location(loc, "pbe", flow_len, nullptr, 1, capture);
  if (!writer.close()) {
    std::fprintf(stderr, "record failed: %s\n", writer.error().c_str());
    return 1;
  }
  const double live_sf_per_sec =
      static_cast<double>(live.sim_cell_subframes) / (live.wall_ms / 1000.0);
  std::printf("live_sim: %.0f cell-subframes/s (%.1f ms wall, %llu bytes "
              "recorded)\n",
              live_sf_per_sec, live.wall_ms,
              static_cast<unsigned long long>(writer.bytes_written()));
  reporter.add("live_sim", live.wall_ms, live_sf_per_sec,
               live.decode_candidates);

  // --- Replay.
  cap::TraceReader reader(trace_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "replay open failed: %s\n", reader.error().c_str());
    return 1;
  }
  cap::PipelineDigest replay_digest;
  cap::ReplayDriver driver(reader.header(), &replay_digest);
  const bench::WallTimer timer;
  const auto stats = driver.run(reader);
  const double replay_ms = timer.ms();
  if (!reader.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", reader.error().c_str());
    return 1;
  }
  const double replay_sf_per_sec =
      static_cast<double>(stats.cell_subframes) / (replay_ms / 1000.0);
  std::printf("replay:   %.0f cell-subframes/s (%.1f ms wall, %llu batches)\n",
              replay_sf_per_sec, replay_ms,
              static_cast<unsigned long long>(stats.batches));
  reporter.add("replay", replay_ms, replay_sf_per_sec,
               driver.monitor().total_candidates_tried());

  std::remove(trace_path);

  // --- Fidelity gate: the replayed pipeline must be byte-identical.
  if (!(live_digest == replay_digest)) {
    std::fprintf(stderr,
                 "FIDELITY MISMATCH: live obs=0x%016llx probe=0x%016llx vs "
                 "replay obs=0x%016llx probe=0x%016llx\n",
                 static_cast<unsigned long long>(live_digest.observation_digest()),
                 static_cast<unsigned long long>(live_digest.probe_digest()),
                 static_cast<unsigned long long>(replay_digest.observation_digest()),
                 static_cast<unsigned long long>(replay_digest.probe_digest()));
    return 1;
  }
  std::printf("fidelity: digests match (obs=0x%016llx probe=0x%016llx), "
              "replay %.1fx faster than live\n",
              static_cast<unsigned long long>(live_digest.observation_digest()),
              static_cast<unsigned long long>(live_digest.probe_digest()),
              replay_sf_per_sec / live_sf_per_sec);
  return 0;
}
