// Figure 8: higher send rates mean more retransmission delay.
//
// Fixed offered loads of 6 / 24 / 36 Mbit/s over the same link; the bench
// reports the one-way delay distribution and the fraction of packets that
// absorbed >= one 8 ms HARQ retransmission, plus the stability of the
// minimum (Dprop survives because some packets always go through clean).
#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

struct LoadResult {
  double mn = 0, p50 = 0, p90 = 0, p99 = 0, spiked_pct = 0;
};

LoadResult run_load(double load) {
  sim::ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.cells = {{10.0, 0.0}};
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.trace = phy::MobilityTrace::stationary(-90.0);  // ~65 Mbit/s capacity
  s.add_ue(ue);
  sim::FlowSpec flow;
  flow.algo = "fixed";
  flow.fixed_rate = load * 1e6;
  flow.path.jitter = 3 * util::kMillisecond;  // the paper's ~3 ms jitter
  flow.stop = 15 * util::kSecond;
  const int f = s.add_flow(flow);
  s.run_until(flow.stop);
  s.stats(f).finish(flow.stop);

  const auto& d = s.stats(f).delays_ms();
  const double mn = d.min();
  int spiked = 0;
  for (double v : d.samples()) spiked += v >= mn + 8.0 ? 1 : 0;
  return {mn, d.percentile(50), d.percentile(90), d.percentile(99),
          100.0 * spiked / static_cast<double>(d.count())};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig8", argc, argv);
  bench::header("Figure 8: one-way delay vs offered load (6/24/36 Mbit/s)");

  const std::vector<double> loads = {6.0, 24.0, 36.0};
  bench::WallTimer wt;
  const auto results = par::parallel_map(
      loads.size(), [&](std::size_t j) { return run_load(loads[j]); });
  // 3 runs x 15 s x one cell, 1 ms subframes.
  rep.add("3load_sweep", wt.ms(), 45000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n  load(Mb)  min(ms)  p50(ms)  p90(ms)  p99(ms)  "
              ">=8ms-over-min(%%)\n");
  for (std::size_t j = 0; j < loads.size(); ++j) {
    const auto& r = results[j];
    std::printf("  %7.0f  %7.1f  %7.1f  %7.1f  %7.1f  %12.1f\n", loads[j],
                r.mn, r.p50, r.p90, r.p99, r.spiked_pct);
  }
  std::printf("\n  Paper shape: at 6 Mbit/s almost no packets see the 8 ms\n"
              "  retransmission step; at 24 and 36 Mbit/s progressively more\n"
              "  do (bigger TBs fail more often), while the *minimum* delay\n"
              "  stays pinned at the propagation floor at every load.\n");
  return 0;
}
