// Figure 3: HARQ retransmission and the reordering buffer.
//
// A retransmitted transport block arrives 8 subframes after the original;
// the mobile buffers everything behind it, so the erroneous block's
// packets see +8 ms and the following blocks' packets see a decaying
// 7..0 ms. The bench runs a steady flow over an error-prone link, finds
// retransmission episodes, and prints the delay staircase around one.
#include <vector>

#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig3", argc, argv);
  bench::header("Figure 3: 8 ms retransmission delay and reordering");
  bench::WallTimer wt;

  sim::ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.cells = {{10.0, 0.0}};
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  // Large TBs at moderate signal: a few percent TB error rate.
  ue.trace = phy::MobilityTrace::stationary(-97.0);
  ue.noise_floor_dbm = -110.0;
  s.add_ue(ue);

  sim::FlowSpec flow;
  flow.algo = "fixed";
  flow.fixed_rate = 16e6;
  flow.path.jitter = 0;
  flow.stop = 20 * util::kSecond;
  const int f = s.add_flow(flow);
  s.run_until(flow.stop);
  s.stats(f).finish(flow.stop);
  // 20 s over one cell, 1 ms subframes.
  rep.add("harq_staircase", wt.ms(), 20000.0 / (wt.ms() / 1000.0), 0);

  const auto& delays = s.stats(f).delays_ms();
  // Copy in delivery order *before* percentile() lazily sorts the set.
  const std::vector<double> samples(delays.samples().begin(),
                                    delays.samples().end());
  const double floor_ms = delays.percentile(5);

  // Locate a retransmission episode: a jump of >= 7 ms over the floor.
  std::size_t episode = 0;
  for (std::size_t i = 50; i + 16 < samples.size(); ++i) {
    if (samples[i] > floor_ms + 7.0 && samples[i - 1] < floor_ms + 4.0) {
      episode = i;
      break;
    }
  }

  std::printf("\n  one-way delay floor: %.1f ms;   TB errors: %llu of %llu TBs "
              "(%.1f%%)\n",
              floor_ms,
              static_cast<unsigned long long>(s.bs().total_tb_errors()),
              static_cast<unsigned long long>(s.bs().total_tbs_sent()),
              100.0 * static_cast<double>(s.bs().total_tb_errors()) /
                  static_cast<double>(s.bs().total_tbs_sent()));
  if (episode == 0) {
    std::printf("  no retransmission episode found (unexpected)\n");
    return 1;
  }
  std::printf("\n  packets around one retransmission episode "
              "(delay relative to floor):\n  pkt  +delay(ms)\n");
  for (std::size_t i = episode - 3; i < episode + 13 && i < samples.size(); ++i) {
    std::printf("  %3zd  %+9.1f  %s\n", static_cast<ssize_t>(i) - static_cast<ssize_t>(episode),
                samples[i] - floor_ms,
                samples[i] > floor_ms + 6.5 ? "<- buffered behind the retransmission"
                                            : "");
  }
  std::printf("\n  Paper shape: the erroneous TB's packets wait ~8 ms; packets in\n"
              "  the TBs behind it drain with decreasing extra delay (7..0 ms).\n");
  return 0;
}
