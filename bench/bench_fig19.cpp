// Figure 19: drill-down time series of the controlled-competition run —
// PBE-CC and BBR throughput (200 ms averages) and median delay per 500 ms,
// with the competitor's on-periods marked.
#include <map>

#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

struct Series {
  std::map<int, double> tput_mbps;          // per 500 ms bucket
  std::map<int, util::SampleSet> delay_ms;  // per 500 ms bucket
};

Series run(const std::string& algo) {
  sim::ScenarioConfig cfg;
  cfg.seed = 131;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
  sim::Scenario s{cfg};
  for (mac::UeId id = 1; id <= 2; ++id) {
    sim::UeSpec ue;
    ue.id = id;
    ue.cell_indices = {0, 1};
    s.add_ue(ue);
  }
  sim::FlowSpec fs;
  fs.algo = algo;
  fs.start = 100 * util::kMillisecond;
  fs.stop = 24 * util::kSecond;
  const int f = s.add_flow(fs);
  for (int burst = 0; burst < 3; ++burst) {
    sim::FlowSpec comp;
    comp.algo = "fixed";
    comp.fixed_rate = 60e6;
    comp.ue = 2;
    comp.start = (4 + burst * 8) * util::kSecond;
    comp.stop = comp.start + 4 * util::kSecond;
    s.add_flow(comp);
  }
  s.run_until(fs.stop);
  s.stats(f).finish(fs.stop);

  Series out;
  const auto wins = s.stats(f).window_tputs_mbps().samples();  // 100 ms each
  std::map<int, util::OnlineStats> t;
  for (std::size_t i = 0; i < wins.size(); ++i) {
    t[static_cast<int>(i / 5)].add(wins[i]);
  }
  for (auto& [b, st] : t) out.tput_mbps[b] = st.mean();
  const auto dl = s.stats(f).delays_ms().samples();
  for (std::size_t i = 0; i < dl.size(); ++i) {
    const int bucket = static_cast<int>(48.0 * static_cast<double>(i) /
                                        static_cast<double>(dl.size()));
    out.delay_ms[bucket].add(dl[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig19", argc, argv);
  bench::header("Figure 19: PBE-CC vs BBR through competitor on/off transitions");
  bench::WallTimer wt;
  const auto series = par::parallel_map(
      2, [&](std::size_t j) { return run(j == 0 ? "pbe" : "bbr"); });
  auto pbe = series[0];
  auto bbr = series[1];
  // 2 algos x 24 s x two cells, 1 ms subframes.
  rep.add("competition_timeseries", wt.ms(), 96000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n            ---- PBE-CC ----      ----- BBR -----\n");
  std::printf("  t(s)      tput(Mb)  delay(ms)   tput(Mb)  delay(ms)   competitor\n");
  for (int b = 0; b < 48; ++b) {
    const double t0 = 0.5 * b;
    const bool comp_on = (t0 >= 4 && t0 < 8) || (t0 >= 12 && t0 < 16) ||
                         (t0 >= 20 && t0 < 24);
    std::printf("  %4.1f   %10.1f %10.1f %10.1f %10.1f   %s\n", t0,
                pbe.tput_mbps[b], pbe.delay_ms[b].percentile(50),
                bbr.tput_mbps[b], bbr.delay_ms[b].percentile(50),
                comp_on ? "ON" : "");
  }
  std::printf("\n  Paper shape: PBE-CC halves its rate within ~1 RTT of the\n"
              "  competitor arriving (delay stays near the floor) and reclaims\n"
              "  the capacity immediately when it leaves; BBR reacts late, so\n"
              "  its delay inflates during every ON period.\n");
  return 0;
}
