// Figure 7: how many users actually compete for bandwidth?
//  (a) CDF of the number of active users in a 40 ms window, before and
//      after the control-traffic filter (Ta > 1, Pave > 4);
//  (b) CDF of each detected user's activity length and mean PRBs.
// Plus the §7 discussion stats: control messages per subframe and size.
#include "bench/bench_common.h"
#include "decoder/monitor.h"
#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig7", argc, argv);
  bench::header("Figure 7: active users and the control-traffic filter");
  bench::WallTimer wt;

  sim::ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.cells = {{20.0, 0.4}};  // busy 20 MHz cell: ~0.4 control users / sf
  sim::Scenario s{cfg};

  sim::UeSpec ue;  // our monitor-carrying device
  ue.cell_indices = {0};
  s.add_ue(ue);
  sim::FlowSpec fs;
  fs.algo = "pbe";
  fs.stop = 30 * util::kSecond;
  const int f = s.add_flow(fs);

  sim::BackgroundSpec bg;  // a few real data users
  bg.n_users = 5;
  bg.sessions_per_sec = 0.8;
  bg.rate_lo = 2e6;
  bg.rate_hi = 12e6;
  s.add_background(bg);

  // Sample the monitor's tracker every 40 ms.
  util::SampleSet raw_users, filtered_users;
  util::SampleSet activity_len_ms, mean_prbs;
  std::map<phy::Rnti, int> seen;

  // Messages per subframe (paper §7: <4 in >95% of subframes).
  util::SampleSet msgs_per_sf;
  decoder::BlindDecoder probe{phy::CellConfig{1, 20.0}};
  s.bs().add_pdcch_observer([&](const phy::PdcchSubframe& sf) {
    if (sf.cell_id == 1) {
      msgs_per_sf.add(static_cast<double>(probe.decode(sf).size()));
    }
  });

  for (int ms = 40; ms <= 30000; ms += 40) {
    s.run_until(ms * util::kMillisecond);
    const auto& tracker = s.pbe_client(f)->monitor().tracker(1);
    raw_users.add(tracker.raw_users());
    filtered_users.add(tracker.data_users(0x101));
    for (const auto& a : tracker.activity()) {
      if (++seen[a.rnti] == 1) {  // record each user once, at first sight
        activity_len_ms.add(a.active_subframes);
        mean_prbs.add(a.average_prbs);
      }
    }
  }

  // 30 s over one cell, 1 ms subframes.
  rep.add("user_tracker_30s", wt.ms(), 30000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n  (a) active users in a 40 ms window (CDF deciles):\n");
  bench::print_cdf("    all detected users", raw_users);
  bench::print_cdf("    after Ta>1,Pa>4", filtered_users);
  std::printf("    means: %.1f raw -> %.2f filtered\n", raw_users.mean(),
              filtered_users.mean());

  std::printf("\n  (b) per-user activity (CDF deciles):\n");
  bench::print_cdf("    active length (sf)", activity_len_ms);
  bench::print_cdf("    mean occupied PRBs", mean_prbs);
  double four_prb_one_sf = 0;
  {
    int canonical = 0, total = 0;
    for (const auto& [rnti, cnt] : seen) (void)rnti, (void)cnt, ++total;
    // Recompute from the recorded first-sight samples.
    for (std::size_t i = 0; i < activity_len_ms.count(); ++i) {
      canonical += (activity_len_ms.samples()[i] <= 1.0 &&
                    mean_prbs.samples()[i] <= 4.0)
                       ? 1
                       : 0;
    }
    four_prb_one_sf = total ? 100.0 * canonical / total : 0;
  }
  std::printf("    %.1f%% of users: one subframe and <=4 PRBs "
              "(paper: ~68%% occupy exactly 4 PRBs for 1 subframe)\n",
              four_prb_one_sf);

  std::printf("\n  §7 control-channel load:\n");
  std::printf("    messages per subframe: p50=%.0f p95=%.0f p99=%.0f "
              "(paper: <4 in >95%% of subframes)\n",
              msgs_per_sf.percentile(50), msgs_per_sf.percentile(95),
              msgs_per_sf.percentile(99));
  int max_bits = 0;
  for (int fidx = 0; fidx < phy::kNumDciFormats; ++fidx) {
    max_bits = std::max(max_bits,
                        phy::dci_payload_bits(static_cast<phy::DciFormat>(fidx)) + 16);
  }
  std::printf("    largest control message: %d bits (paper: <70 bits)\n",
              max_bits);
  return 0;
}
