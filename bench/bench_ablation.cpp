// Ablations of PBE-CC's design choices (DESIGN.md §4) plus the §7
// extension knobs:
//   A. control-traffic filter (Ta > 1, Pa > 4) on/off;
//   B. cwnd gain — the §7 delay-for-throughput buffering trade-off;
//   C. cell fairness policy (fair-share vs proportional-fair vs weighted)
//      under unchanged PBE-CC senders;
//   D. monitor decode quality (extra control-channel BER);
//   E. endpoint measurement vs explicit network feedback (ABC oracle).
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "sim/scenario.h"
#include "util/stats.h"

using namespace pbecc;

namespace {

struct Result {
  double tput = 0, p50 = 0, p95 = 0;
  std::uint64_t sfs = 0;
};

Result run_one(sim::ScenarioConfig cfg, sim::FlowSpec fs, bool busy_bg,
               double weight = 1.0) {
  const auto n_cells = cfg.cells.size();
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.cell_indices = {0};
  ue.scheduling_weight = weight;
  s.add_ue(ue);
  if (busy_bg) {
    sim::BackgroundSpec bg;
    bg.n_users = 5;
    bg.sessions_per_sec = 0.8;
    s.add_background(bg);
  }
  fs.stop = fs.start + 12 * util::kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop);
  s.stats(f).finish(fs.stop);
  return {s.stats(f).avg_tput_mbps(), s.stats(f).median_delay_ms(),
          s.stats(f).p95_delay_ms(),
          static_cast<std::uint64_t>(fs.stop / util::kSubframe) * n_cells};
}

sim::ScenarioConfig busy_cell(std::uint64_t seed = 211) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.cells = {{10.0, 0.4}};
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_ablation", argc, argv);

  // Every ablation point is an independent single-flow scenario. Build the
  // full run list up front (in the order the sections print), fan it out on
  // the pool once, then print each section from the ordered results.
  std::vector<std::function<Result()>> jobs;

  // A: filter on, filter off.
  {
    sim::FlowSpec on;
    on.algo = "pbe";
    sim::FlowSpec off = on;
    off.pbe_control_filter = false;
    jobs.push_back([on] { return run_one(busy_cell(), on, true); });
    jobs.push_back([off] { return run_one(busy_cell(), off, true); });
  }
  // B: five cwnd gains.
  const std::vector<double> gains = {1.0, 1.25, 1.5, 2.0, 3.0};
  for (const double g : gains) {
    jobs.push_back([g] {
      sim::FlowSpec fs;
      fs.algo = "pbe";
      fs.pbe_cwnd_gain = g;
      return run_one(busy_cell(212), fs, true);
    });
  }
  // C: two scheduler policies plus weighted fair-share.
  const std::vector<std::string> scheds = {"fair-share", "proportional-fair"};
  for (const auto& sched : scheds) {
    jobs.push_back([sched] {
      auto cfg = busy_cell(213);
      cfg.scheduler = sched;
      sim::FlowSpec fs;
      fs.algo = "pbe";
      return run_one(cfg, fs, true);
    });
  }
  jobs.push_back([] {
    sim::FlowSpec fs;
    fs.algo = "pbe";
    return run_one(busy_cell(213), fs, true, 2.0);
  });
  // D: four extra-BER levels.
  const std::vector<double> bers = {0.0, 0.01, 0.03, 0.06};
  for (const double ber : bers) {
    jobs.push_back([ber] {
      sim::FlowSpec fs;
      fs.algo = "pbe";
      fs.pbe_monitor_extra_ber = ber;
      return run_one(busy_cell(214), fs, true);
    });
  }
  // F: repetition vs convolutional PDCCH.
  for (const bool conv : {false, true}) {
    jobs.push_back([conv] {
      auto cfg = busy_cell(216);
      cfg.cells.front().convolutional_pdcch = conv;
      sim::FlowSpec fs;
      fs.algo = "pbe";
      return run_one(cfg, fs, true);
    });
  }
  // E: endpoint PBE vs ABC oracle.
  for (const char* algo : {"pbe", "abc"}) {
    jobs.push_back([algo] {
      sim::FlowSpec fs;
      fs.algo = algo;
      return run_one(busy_cell(215), fs, true);
    });
  }

  bench::WallTimer wt;
  const auto results = par::parallel_map(
      jobs.size(), [&](std::size_t j) { return jobs[j](); });
  std::uint64_t sim_sfs = 0;
  for (const auto& r : results) sim_sfs += r.sfs;
  rep.add("18_ablation_points", wt.ms(),
          static_cast<double>(sim_sfs) / (wt.ms() / 1000.0), 0);
  std::size_t cur = 0;
  const auto next = [&]() -> const Result& { return results[cur++]; };

  bench::header("Ablation A: control-traffic filter (busy cell, 0.4 ctrl users/sf)");
  {
    const auto with = next();
    const auto without = next();
    std::printf("\n  filter ON :  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                with.tput, with.p50, with.p95);
    std::printf("  filter OFF:  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                without.tput, without.p50, without.p95);
    std::printf("  -> without the filter every parameter-update RNTI inflates N,\n"
                "     the fair-share estimate collapses, and throughput drops %.0f%%.\n",
                100.0 * (1.0 - without.tput / std::max(with.tput, 1e-9)));
  }

  bench::header("Ablation B: cwnd gain (inflight cap) — paper §7 buffering knob");
  std::printf("\n  gain   tput(Mbit/s)   p50(ms)   p95(ms)\n");
  for (const double g : gains) {
    const auto r = next();
    std::printf("  %4.2f   %12.1f   %7.1f   %7.1f\n", g, r.tput, r.p50, r.p95);
  }
  std::printf("  -> more inflight headroom buys throughput robustness against\n"
              "     HARQ jitter at the cost of queueing when capacity drops.\n");

  bench::header("Ablation C: cell fairness policy under PBE-CC (§7)");
  {
    std::printf("\n  policy               tput(Mbit/s)   p50(ms)   p95(ms)\n");
    for (const auto& sched : scheds) {
      const auto r = next();
      std::printf("  %-19s  %12.1f   %7.1f   %7.1f\n", sched.c_str(), r.tput,
                  r.p50, r.p95);
    }
    // Weighted: the same fair-share policy, our user at weight 2.
    const auto r = next();
    std::printf("  %-19s  %12.1f   %7.1f   %7.1f\n", "fair-share (w=2)", r.tput,
                r.p50, r.p95);
    std::printf("  -> PBE-CC's control law reaches equilibrium under each policy\n"
                "     (its Pa-tracking adapts to whatever the scheduler grants).\n");
  }

  bench::header("Ablation D: monitor decode quality (extra control-channel BER)");
  std::printf("\n  extra BER   tput(Mbit/s)   p50(ms)   p95(ms)\n");
  for (const double ber : bers) {
    const auto r = next();
    std::printf("  %9.2f   %12.1f   %7.1f   %7.1f\n", ber, r.tput, r.p50, r.p95);
  }
  std::printf("  -> lost control messages make the monitor under-credit its own\n"
              "     allocation Pa (and competitors' PRBs), so the Eqn 3 estimate\n"
              "     and throughput sag while delay stays low — the failure mode\n"
              "     is conservative, which is why the paper can afford an\n"
              "     imperfect blind decoder.\n");

  bench::header("Ablation F: control-channel coding (repetition vs 36.212 conv.)");
  {
    std::printf("\n  coding          tput(Mbit/s)   p50(ms)   p95(ms)\n");
    for (const bool conv : {false, true}) {
      const auto r = next();
      std::printf("  %-14s  %12.1f   %7.1f   %7.1f\n",
                  conv ? "convolutional" : "repetition", r.tput, r.p50, r.p95);
    }
    std::printf("  -> PBE-CC behaves the same over either control-channel\n"
                "     code; the srsLTE-style convolutional path costs more CPU\n"
                "     per blind decode (see bench_micro) for the same decisions.\n");
  }

  bench::header("Ablation E: endpoint measurement vs explicit network feedback");
  {
    const auto a = next();
    const auto b = next();
    std::printf("\n  PBE-CC (endpoint)  :  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                a.tput, a.p50, a.p95);
    std::printf("  ABC-style (oracle) :  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                b.tput, b.p50, b.p95);
    std::printf("  -> decoding the control channel at the endpoint is fully\n"
                "     competitive with explicit base-station signaling — Eqn 3\n"
                "     even captures instantaneously idle PRBs that a plain\n"
                "     fair-share advertisement misses — without modifying a\n"
                "     single cell (the paper's §1 position).\n");
  }
  return 0;
}
