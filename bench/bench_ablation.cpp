// Ablations of PBE-CC's design choices (DESIGN.md §4) plus the §7
// extension knobs:
//   A. control-traffic filter (Ta > 1, Pa > 4) on/off;
//   B. cwnd gain — the §7 delay-for-throughput buffering trade-off;
//   C. cell fairness policy (fair-share vs proportional-fair vs weighted)
//      under unchanged PBE-CC senders;
//   D. monitor decode quality (extra control-channel BER);
//   E. endpoint measurement vs explicit network feedback (ABC oracle).
#include "bench/bench_common.h"
#include "sim/scenario.h"
#include "util/stats.h"

using namespace pbecc;

namespace {

struct Result {
  double tput = 0, p50 = 0, p95 = 0;
};

Result run_one(sim::ScenarioConfig cfg, sim::FlowSpec fs, bool busy_bg,
               double weight = 1.0) {
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.cell_indices = {0};
  ue.scheduling_weight = weight;
  s.add_ue(ue);
  if (busy_bg) {
    sim::BackgroundSpec bg;
    bg.n_users = 5;
    bg.sessions_per_sec = 0.8;
    s.add_background(bg);
  }
  fs.stop = fs.start + 12 * util::kSecond;
  const int f = s.add_flow(fs);
  s.run_until(fs.stop);
  s.stats(f).finish(fs.stop);
  return {s.stats(f).avg_tput_mbps(), s.stats(f).median_delay_ms(),
          s.stats(f).p95_delay_ms()};
}

sim::ScenarioConfig busy_cell(std::uint64_t seed = 211) {
  sim::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.cells = {{10.0, 0.4}};
  return cfg;
}

}  // namespace

int main() {
  bench::header("Ablation A: control-traffic filter (busy cell, 0.4 ctrl users/sf)");
  {
    sim::FlowSpec on;
    on.algo = "pbe";
    const auto with = run_one(busy_cell(), on, true);
    sim::FlowSpec off = on;
    off.pbe_control_filter = false;
    const auto without = run_one(busy_cell(), off, true);
    std::printf("\n  filter ON :  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                with.tput, with.p50, with.p95);
    std::printf("  filter OFF:  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                without.tput, without.p50, without.p95);
    std::printf("  -> without the filter every parameter-update RNTI inflates N,\n"
                "     the fair-share estimate collapses, and throughput drops %.0f%%.\n",
                100.0 * (1.0 - without.tput / std::max(with.tput, 1e-9)));
  }

  bench::header("Ablation B: cwnd gain (inflight cap) — paper §7 buffering knob");
  std::printf("\n  gain   tput(Mbit/s)   p50(ms)   p95(ms)\n");
  for (double g : {1.0, 1.25, 1.5, 2.0, 3.0}) {
    sim::FlowSpec fs;
    fs.algo = "pbe";
    fs.pbe_cwnd_gain = g;
    const auto r = run_one(busy_cell(212), fs, true);
    std::printf("  %4.2f   %12.1f   %7.1f   %7.1f\n", g, r.tput, r.p50, r.p95);
  }
  std::printf("  -> more inflight headroom buys throughput robustness against\n"
              "     HARQ jitter at the cost of queueing when capacity drops.\n");

  bench::header("Ablation C: cell fairness policy under PBE-CC (§7)");
  {
    std::printf("\n  policy               tput(Mbit/s)   p50(ms)   p95(ms)\n");
    for (const std::string sched : {"fair-share", "proportional-fair"}) {
      auto cfg = busy_cell(213);
      cfg.scheduler = sched;
      sim::FlowSpec fs;
      fs.algo = "pbe";
      const auto r = run_one(cfg, fs, true);
      std::printf("  %-19s  %12.1f   %7.1f   %7.1f\n", sched.c_str(), r.tput,
                  r.p50, r.p95);
    }
    // Weighted: the same fair-share policy, our user at weight 2.
    sim::FlowSpec fs;
    fs.algo = "pbe";
    const auto r = run_one(busy_cell(213), fs, true, 2.0);
    std::printf("  %-19s  %12.1f   %7.1f   %7.1f\n", "fair-share (w=2)", r.tput,
                r.p50, r.p95);
    std::printf("  -> PBE-CC's control law reaches equilibrium under each policy\n"
                "     (its Pa-tracking adapts to whatever the scheduler grants).\n");
  }

  bench::header("Ablation D: monitor decode quality (extra control-channel BER)");
  std::printf("\n  extra BER   tput(Mbit/s)   p50(ms)   p95(ms)\n");
  for (double ber : {0.0, 0.01, 0.03, 0.06}) {
    sim::FlowSpec fs;
    fs.algo = "pbe";
    fs.pbe_monitor_extra_ber = ber;
    const auto r = run_one(busy_cell(214), fs, true);
    std::printf("  %9.2f   %12.1f   %7.1f   %7.1f\n", ber, r.tput, r.p50, r.p95);
  }
  std::printf("  -> lost control messages make the monitor under-credit its own\n"
              "     allocation Pa (and competitors' PRBs), so the Eqn 3 estimate\n"
              "     and throughput sag while delay stays low — the failure mode\n"
              "     is conservative, which is why the paper can afford an\n"
              "     imperfect blind decoder.\n");

  bench::header("Ablation F: control-channel coding (repetition vs 36.212 conv.)");
  {
    std::printf("\n  coding          tput(Mbit/s)   p50(ms)   p95(ms)\n");
    for (const bool conv : {false, true}) {
      auto cfg = busy_cell(216);
      cfg.cells.front().convolutional_pdcch = conv;
      sim::FlowSpec fs;
      fs.algo = "pbe";
      const auto r = run_one(cfg, fs, true);
      std::printf("  %-14s  %12.1f   %7.1f   %7.1f\n",
                  conv ? "convolutional" : "repetition", r.tput, r.p50, r.p95);
    }
    std::printf("  -> PBE-CC behaves the same over either control-channel\n"
                "     code; the srsLTE-style convolutional path costs more CPU\n"
                "     per blind decode (see bench_micro) for the same decisions.\n");
  }

  bench::header("Ablation E: endpoint measurement vs explicit network feedback");
  {
    sim::FlowSpec pbe;
    pbe.algo = "pbe";
    const auto a = run_one(busy_cell(215), pbe, true);
    sim::FlowSpec abc;
    abc.algo = "abc";
    const auto b = run_one(busy_cell(215), abc, true);
    std::printf("\n  PBE-CC (endpoint)  :  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                a.tput, a.p50, a.p95);
    std::printf("  ABC-style (oracle) :  %6.1f Mbit/s   p50 %6.1f ms   p95 %6.1f ms\n",
                b.tput, b.p50, b.p95);
    std::printf("  -> decoding the control channel at the endpoint is fully\n"
                "     competitive with explicit base-station signaling — Eqn 3\n"
                "     even captures instantaneously idle PRBs that a plain\n"
                "     fair-share advertisement misses — without modifying a\n"
                "     single cell (the paper's §1 position).\n");
  }
  return 0;
}
