// Figure 12: distribution across the 40 stationary locations of
//  (a) average throughput and (b) 95th-percentile one-way delay, for the
// four "high throughput" algorithms: PBE-CC, BBR, CUBIC and Verus.
#include "bench/bench_common.h"
#include "sim/location.h"

using namespace pbecc;

int main(int argc, char** argv) {
  const util::Duration len = bench::flow_seconds(argc, argv, 12);
  bench::header("Figure 12: CDFs across 40 locations (high-tput algorithms)");

  const std::vector<std::string> algos = {"pbe", "bbr", "cubic", "verus"};
  std::map<std::string, util::SampleSet> tput, p95;
  for (int i = 0; i < sim::kNumLocations; ++i) {
    const auto loc = sim::location(i);
    for (const auto& algo : algos) {
      const auto r = sim::run_location(loc, algo, len);
      tput[algo].add(r.avg_tput_mbps);
      p95[algo].add(r.p95_delay_ms);
    }
    std::fprintf(stderr, "  [fig12] location %d/%d done\r", i + 1,
                 sim::kNumLocations);
  }
  std::fprintf(stderr, "\n");

  std::printf("\n  (a) average throughput across locations, Mbit/s "
              "(CDF deciles 10..100):\n");
  for (const auto& a : algos) bench::print_cdf(("    " + a).c_str(), tput[a]);
  std::printf("\n  (b) 95th percentile one-way delay across locations, ms "
              "(CDF deciles 10..100):\n");
  for (const auto& a : algos) bench::print_cdf(("    " + a).c_str(), p95[a]);

  std::printf("\n  means: ");
  for (const auto& a : algos) {
    std::printf("%s %.1f Mbit/s / %.0f ms;  ", a.c_str(), tput[a].mean(),
                p95[a].mean());
  }
  std::printf("\n\n  Paper shape: PBE-CC's throughput CDF sits right of BBR's\n"
              "  and CUBIC's for most locations while its delay CDF sits far\n"
              "  left of all three (2.3x CUBIC throughput at 1.8x less delay).\n");
  return 0;
}
