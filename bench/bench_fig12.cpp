// Figure 12: distribution across the 40 stationary locations of
//  (a) average throughput and (b) 95th-percentile one-way delay, for the
// four "high throughput" algorithms: PBE-CC, BBR, CUBIC and Verus.
#include "bench/bench_common.h"
#include "sim/location.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig12", argc, argv);
  const util::Duration len = bench::flow_seconds(argc, argv, 12);
  bench::header("Figure 12: CDFs across 40 locations (high-tput algorithms)");

  const std::vector<std::string> algos = {"pbe", "bbr", "cubic", "verus"};
  // Every (location, algorithm) run is an independent simulation: fan the
  // whole grid out on the pool and merge in job order.
  struct Job {
    int loc;
    std::string algo;
  };
  std::vector<Job> jobs;
  for (int i = 0; i < sim::kNumLocations; ++i) {
    for (const auto& algo : algos) jobs.push_back({i, algo});
  }
  bench::WallTimer wt;
  const auto results = par::parallel_map(jobs.size(), [&](std::size_t j) {
    return sim::run_location(sim::location(jobs[j].loc), jobs[j].algo, len);
  });

  std::map<std::string, util::SampleSet> tput, p95;
  std::uint64_t sim_sfs = 0, attempts = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    tput[jobs[j].algo].add(results[j].avg_tput_mbps);
    p95[jobs[j].algo].add(results[j].p95_delay_ms);
    sim_sfs += results[j].sim_cell_subframes;
    attempts += results[j].decode_candidates;
  }
  rep.add("40loc_x_4algo", wt.ms(),
          static_cast<double>(sim_sfs) / (wt.ms() / 1000.0), attempts);

  std::printf("\n  (a) average throughput across locations, Mbit/s "
              "(CDF deciles 10..100):\n");
  for (const auto& a : algos) bench::print_cdf(("    " + a).c_str(), tput[a]);
  std::printf("\n  (b) 95th percentile one-way delay across locations, ms "
              "(CDF deciles 10..100):\n");
  for (const auto& a : algos) bench::print_cdf(("    " + a).c_str(), p95[a]);

  std::printf("\n  means: ");
  for (const auto& a : algos) {
    std::printf("%s %.1f Mbit/s / %.0f ms;  ", a.c_str(), tput[a].mean(),
                p95[a].mean());
  }
  std::printf("\n\n  Paper shape: PBE-CC's throughput CDF sits right of BBR's\n"
              "  and CUBIC's for most locations while its delay CDF sits far\n"
              "  left of all three (2.3x CUBIC throughput at 1.8x less delay).\n");
  return 0;
}
