// Figure 2: carrier aggregation in action.
//
// A sender offers a fixed 40 Mbit/s for two seconds — more than the
// primary cell can carry — then drops to 6 Mbit/s. The bench prints the
// primary/secondary PRB allocation and packet delay over time; the paper's
// shape: queue builds, the secondary activates (~0.13 s), the queue drains,
// and after the rate drop the secondary is deactivated.
#include <map>

#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig2", argc, argv);
  bench::header("Figure 2: secondary-cell activation / deactivation");
  bench::WallTimer wt;

  sim::ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
  sim::Scenario s{cfg};

  sim::UeSpec ue;
  ue.cell_indices = {0, 1};
  // ~-95 dBm: the primary alone tops out near 26 Mbit/s, below the 40
  // Mbit/s offered load.
  ue.trace = phy::MobilityTrace::stationary(-95.0);
  s.add_ue(ue);

  sim::FlowSpec flow;
  flow.algo = "fixed";
  flow.fixed_rate = 40e6;
  flow.start = 100 * util::kMillisecond;
  flow.stop = flow.start + 2 * util::kSecond;  // then the app rate drops
  const int f40 = s.add_flow(flow);

  sim::FlowSpec low = flow;
  low.fixed_rate = 6e6;
  low.start = flow.stop;
  low.stop = low.start + 1500 * util::kMillisecond;
  const int f6 = s.add_flow(low);

  // Per-50ms averages of the allocation ground truth.
  struct Window {
    long prb_primary = 0, prb_secondary = 0, sfs = 0;
  };
  std::map<std::int64_t, Window> windows;
  s.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    auto& w = windows[r.sf_index / 50];
    if (r.cell == 1) ++w.sfs;
    for (const auto& a : r.data_allocs) {
      if (a.ue != 1) continue;
      (r.cell == 1 ? w.prb_primary : w.prb_secondary) += a.n_prbs;
    }
  });

  util::Time activated_at = -1, deactivated_at = -1;
  std::size_t last_active = 1;
  for (int ms = 0; ms <= 3700; ms += 10) {
    s.run_until(ms * util::kMillisecond);
    const auto n = s.bs().ca(1).num_active();
    if (n > last_active && activated_at < 0) activated_at = s.loop().now();
    if (n < last_active && deactivated_at < 0) deactivated_at = s.loop().now();
    last_active = n;
  }
  s.stats(f40).finish(flow.stop);
  s.stats(f6).finish(low.stop);
  // 3.7 s simulated over 2 cells, 1 ms subframes.
  rep.add("ca_activation", wt.ms(), 2 * 3700.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n  time(s)  PRB-primary  PRB-secondary  delay-p50(ms)\n");
  // Delay series from both flows merged by windows of their samples.
  for (const auto& [win, w] : windows) {
    if (w.sfs == 0) continue;
    const double t = static_cast<double>(win) * 0.05;
    if (t > 3.7) break;
    std::printf("  %6.2f   %10.1f  %12.1f\n", t,
                static_cast<double>(w.prb_primary) / w.sfs,
                static_cast<double>(w.prb_secondary) / w.sfs);
  }

  std::printf("\n  offered 40 Mbit/s from t=0.10s: secondary activated at t=%.2fs\n",
              activated_at >= 0 ? util::to_seconds(activated_at) : -1.0);
  std::printf("  offered 6 Mbit/s from t=2.10s: secondary deactivated at t=%.2fs\n",
              deactivated_at >= 0 ? util::to_seconds(deactivated_at) : -1.0);
  std::printf("  40 Mbit/s phase: delivered %.1f Mbit/s, p95 delay %.1f ms "
              "(queue build+drain)\n",
              s.stats(f40).avg_tput_mbps(), s.stats(f40).p95_delay_ms());
  std::printf("  6 Mbit/s phase:  delivered %.1f Mbit/s, p95 delay %.1f ms\n",
              s.stats(f6).avg_tput_mbps(), s.stats(f6).p95_delay_ms());
  std::printf("\n  Paper shape: activation ~0.13 s after overload onset; queue\n"
              "  drained within ~0.6 s; deactivation ~0.5-1 s after rate drop.\n");
  return 0;
}
