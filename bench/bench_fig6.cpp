// Figure 6: cross-layer overhead measurements.
//  (a) capacity share spent on retransmissions and protocol overhead as a
//      function of offered load, at two signal strengths;
//  (b) transport-block error rate vs TB size: theory 1-(1-p)^L against
//      the simulated (empirical) rate.
#include "bench/bench_common.h"
#include "phy/error_model.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

struct OverheadResult {
  double retx_pct = 0;
  double protocol_pct = 6.8;  // constant gamma, as the paper models
};

OverheadResult measure_overhead(double rssi, double offered_mbps) {
  sim::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(rssi * -10 + offered_mbps);
  cfg.cells = {{20.0, 0.0}};  // 100 PRBs so even -113 dBm carries 40 Mbit/s
  sim::Scenario s{cfg};
  sim::UeSpec ue;
  ue.trace = phy::MobilityTrace::stationary(rssi);
  ue.noise_floor_dbm = -118.0;  // keep the MCS usable at -113 dBm
  s.add_ue(ue);
  sim::FlowSpec flow;
  flow.algo = "fixed";
  flow.fixed_rate = offered_mbps * 1e6;
  flow.stop = 10 * util::kSecond;
  s.add_flow(flow);

  long retx = 0, data = 0;
  s.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    retx += r.retx_prbs;
    for (const auto& a : r.data_allocs) data += a.n_prbs;
  });
  s.run_until(flow.stop);
  OverheadResult res;
  if (retx + data > 0) {
    res.retx_pct = 100.0 * static_cast<double>(retx) /
                   static_cast<double>(retx + data);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig6", argc, argv);
  bench::header("Figure 6(a): retransmission + protocol overhead vs offered load");
  std::printf("\n  offered(Mbit/s)   retx%% @-98dBm  proto%% @-98dBm   "
              "retx%% @-113dBm  proto%% @-113dBm\n");
  // 8 loads x 2 signal strengths of independent runs: pool fan-out.
  const std::vector<double> loads = {5.0,  10.0, 15.0, 20.0,
                                     25.0, 30.0, 35.0, 40.0};
  bench::WallTimer wt;
  const auto grid = par::parallel_map(2 * loads.size(), [&](std::size_t j) {
    return measure_overhead(j < loads.size() ? -98.0 : -113.0,
                            loads[j % loads.size()]);
  });
  // 16 runs x 10 s x one cell, 1 ms subframes.
  rep.add("8load_x_2rssi", wt.ms(), 160000.0 / (wt.ms() / 1000.0), 0);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto& strong = grid[i];
    const auto& weak = grid[loads.size() + i];
    std::printf("  %8.0f          %6.1f          %6.1f           %6.1f"
                "           %6.1f\n",
                loads[i], strong.retx_pct, strong.protocol_pct, weak.retx_pct,
                weak.protocol_pct);
  }
  std::printf("\n  Paper shape: retransmission overhead grows with offered load\n"
              "  (larger TBs fail more often) and is higher at -113 dBm;\n"
              "  protocol overhead is a constant ~6.8%%.\n");

  bench::header("Figure 6(b): TB error rate vs TB size — theory and empirical");
  std::printf("\n  TBsize(kbit)   p=1e-6    p=2e-6    p=3e-6    p=5e-6    "
              "empirical@-98dBm\n");
  util::Rng rng{17};
  for (double kbit : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0}) {
    const double bits = kbit * 1000.0;
    // Empirical: Monte-Carlo draws at the -98 dBm residual BER.
    const double p98 = phy::residual_ber_from_rssi(-98.0);
    int errors = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      errors += rng.bernoulli(phy::tb_error_rate(p98, bits)) ? 1 : 0;
    }
    std::printf("  %8.0f     %8.4f  %8.4f  %8.4f  %8.4f     %8.4f\n", kbit,
                phy::tb_error_rate(1e-6, bits), phy::tb_error_rate(2e-6, bits),
                phy::tb_error_rate(3e-6, bits), phy::tb_error_rate(5e-6, bits),
                static_cast<double>(errors) / trials);
  }
  std::printf("\n  Paper shape: error rate rises with TB size following\n"
              "  1-(1-p)^L; measured points track the theory curve for the\n"
              "  location's residual bit error rate.\n");
  return 0;
}
