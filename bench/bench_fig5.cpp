// Figure 5: idle-PRB detection and reallocation.
//
// Three PBE-CC users share one cell; one of them finishes its flow
// mid-run. The survivors observe the idle PRBs in the decoded control
// channel and grab their fair share within a few RTTs. The bench prints
// per-100 ms PRB allocations around the departure.
#include <map>

#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace pbecc;

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig5", argc, argv);
  bench::header("Figure 5: idle PRBs are detected and re-shared");
  bench::WallTimer wt;

  sim::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.cells = {{10.0, 0.02}};
  sim::Scenario s{cfg};
  for (mac::UeId id = 1; id <= 3; ++id) {
    sim::UeSpec ue;
    ue.id = id;
    ue.cell_indices = {0};
    s.add_ue(ue);
  }
  std::vector<int> flows;
  for (mac::UeId id = 1; id <= 3; ++id) {
    sim::FlowSpec fs;
    fs.algo = "pbe";
    fs.ue = id;
    fs.start = 100 * util::kMillisecond;
    // User 2's flow ends at t = 6 s; the others run to 10 s.
    fs.stop = id == 2 ? 6 * util::kSecond : 10 * util::kSecond;
    flows.push_back(s.add_flow(fs));
  }

  struct Window {
    long prbs[4] = {0, 0, 0, 0};
    long idle = 0, sfs = 0;
  };
  std::map<std::int64_t, Window> windows;
  s.bs().set_allocation_observer([&](const mac::AllocationRecord& r) {
    auto& w = windows[r.sf_index / 100];
    ++w.sfs;
    w.idle += r.idle_prbs;
    for (const auto& a : r.data_allocs) {
      if (a.ue >= 1 && a.ue <= 3) w.prbs[a.ue] += a.n_prbs;
    }
  });
  s.run_until(10 * util::kSecond);
  // 10 s over one cell, 1 ms subframes.
  rep.add("idle_prb_reshare", wt.ms(), 10000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n  time(s)  user1  user2  user3  idle   (PRBs, 100 ms means)\n");
  for (const auto& [win, w] : windows) {
    const double t = static_cast<double>(win) * 0.1;
    if (t < 5.0 || t > 8.0 || w.sfs == 0) continue;
    std::printf("  %6.1f  %5.1f  %5.1f  %5.1f  %5.1f %s\n", t,
                static_cast<double>(w.prbs[1]) / w.sfs,
                static_cast<double>(w.prbs[2]) / w.sfs,
                static_cast<double>(w.prbs[3]) / w.sfs,
                static_cast<double>(w.idle) / w.sfs,
                t >= 5.9 && t <= 6.1 ? "<- user 2's flow ends" : "");
  }
  for (int i = 0; i < 3; ++i) s.stats(flows[static_cast<std::size_t>(i)]).finish(10 * util::kSecond);
  std::printf("\n  throughputs: user1 %.1f, user2 %.1f, user3 %.1f Mbit/s\n",
              s.stats(flows[0]).avg_tput_mbps(), s.stats(flows[1]).avg_tput_mbps(),
              s.stats(flows[2]).avg_tput_mbps());
  std::printf("\n  Paper shape: before t=6 s the three users split the cell\n"
              "  ~evenly; after user 2 leaves, users 1 and 3 absorb the idle\n"
              "  PRBs within a few subframe windows and settle at ~1/2 each.\n");
  return 0;
}
