// Figure 16: delay and throughput under mobility.
//
// The paper's trajectory: 13 s at RSSI -85 dBm, a 13 s walk down to
// -105 dBm, a faster (4 s) return, then 10 s parked — 40 s total, run at
// night on an idle cell. Every algorithm drives the same walk.
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

phy::MobilityTrace paper_walk() {
  using util::kSecond;
  return phy::MobilityTrace({{0, -85},
                             {13 * kSecond, -85},
                             {26 * kSecond, -105},
                             {30 * kSecond, -85},
                             {40 * kSecond, -85}});
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("bench_fig16", argc, argv);
  bench::header("Figure 16: 40 s mobility walk (-85 -> -105 -> -85 dBm), idle cell");

  struct Row {
    double tput = 0, p50 = 0, p95 = 0, p90tput = 0;
  };
  const auto algos = sim::all_algorithms();
  bench::WallTimer wt;
  const auto rows = par::parallel_map(algos.size(), [&](std::size_t j) {
    sim::ScenarioConfig cfg;
    cfg.seed = 101;
    cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
    sim::Scenario s{cfg};
    sim::UeSpec ue;
    ue.cell_indices = {0, 1};
    ue.trace = paper_walk();
    s.add_ue(ue);
    sim::FlowSpec fs;
    fs.algo = algos[j];
    fs.start = 100 * util::kMillisecond;
    fs.stop = 40 * util::kSecond;
    const int f = s.add_flow(fs);
    s.run_until(fs.stop);
    s.stats(f).finish(fs.stop);
    return Row{s.stats(f).avg_tput_mbps(), s.stats(f).median_delay_ms(),
               s.stats(f).p95_delay_ms(),
               s.stats(f).window_tputs_mbps().percentile(90)};
  });
  // 8 algos x 40 s x two cells, 1 ms subframes.
  rep.add("mobility_walk_8algo", wt.ms(),
          static_cast<double>(algos.size()) * 80000.0 / (wt.ms() / 1000.0), 0);

  std::printf("\n  %-8s %10s %10s %10s %10s\n", "algo", "tput(Mb)",
              "p50-d(ms)", "p95-d(ms)", "p90tput");
  for (std::size_t j = 0; j < algos.size(); ++j) {
    std::printf("  %-8s %10.1f %10.1f %10.1f %10.1f\n", algos[j].c_str(),
                rows[j].tput, rows[j].p50, rows[j].p95, rows[j].p90tput);
  }
  std::printf("\n  Paper shape: PBE-CC keeps high average throughput with a low\n"
              "  95th-percentile delay (64 ms in the paper); BBR matches the\n"
              "  throughput at ~2.5x the delay; CUBIC and Verus lose throughput\n"
              "  AND blow up delay; the conservative four are barely affected\n"
              "  by mobility because they never use the capacity.\n");
  return 0;
}
