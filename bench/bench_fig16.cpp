// Figure 16: delay and throughput under mobility.
//
// The paper's trajectory: 13 s at RSSI -85 dBm, a 13 s walk down to
// -105 dBm, a faster (4 s) return, then 10 s parked — 40 s total, run at
// night on an idle cell. Every algorithm drives the same walk.
#include "bench/bench_common.h"
#include "sim/algorithms.h"
#include "sim/scenario.h"

using namespace pbecc;

namespace {

phy::MobilityTrace paper_walk() {
  using util::kSecond;
  return phy::MobilityTrace({{0, -85},
                             {13 * kSecond, -85},
                             {26 * kSecond, -105},
                             {30 * kSecond, -85},
                             {40 * kSecond, -85}});
}

}  // namespace

int main() {
  bench::header("Figure 16: 40 s mobility walk (-85 -> -105 -> -85 dBm), idle cell");

  std::printf("\n  %-8s %10s %10s %10s %10s\n", "algo", "tput(Mb)",
              "p50-d(ms)", "p95-d(ms)", "p90tput");
  for (const auto& algo : sim::all_algorithms()) {
    sim::ScenarioConfig cfg;
    cfg.seed = 101;
    cfg.cells = {{10.0, 0.02}, {10.0, 0.02}};
    sim::Scenario s{cfg};
    sim::UeSpec ue;
    ue.cell_indices = {0, 1};
    ue.trace = paper_walk();
    s.add_ue(ue);
    sim::FlowSpec fs;
    fs.algo = algo;
    fs.start = 100 * util::kMillisecond;
    fs.stop = 40 * util::kSecond;
    const int f = s.add_flow(fs);
    s.run_until(fs.stop);
    s.stats(f).finish(fs.stop);
    std::printf("  %-8s %10.1f %10.1f %10.1f %10.1f\n", algo.c_str(),
                s.stats(f).avg_tput_mbps(), s.stats(f).median_delay_ms(),
                s.stats(f).p95_delay_ms(),
                s.stats(f).window_tputs_mbps().percentile(90));
  }
  std::printf("\n  Paper shape: PBE-CC keeps high average throughput with a low\n"
              "  95th-percentile delay (64 ms in the paper); BBR matches the\n"
              "  throughput at ~2.5x the delay; CUBIC and Verus lose throughput\n"
              "  AND blow up delay; the conservative four are barely affected\n"
              "  by mobility because they never use the capacity.\n");
  return 0;
}
