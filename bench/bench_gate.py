#!/usr/bin/env python3
"""Merge bench --json outputs and gate CI on throughput regressions.

Every bench binary accepts `--json <path>` (see bench/bench_common.h) and
writes a JSON array of records:

  {"bench": ..., "config": ..., "wall_ms": ..., "subframes_per_sec": ...,
   "decode_attempts": ..., "threads": ...}

Subcommands:

  merge OUT IN [IN...]
      Concatenate the record arrays from the IN files into OUT (the
      BENCH.json artifact the CI bench-smoke job uploads). Inputs that do
      not exist are skipped with a warning — a bench that did not run in
      this smoke must not crash the merge.

  compare BENCH BASELINE [--threshold 0.25] [--strict]
      Fail (exit 1) if any (bench, config) record present in both files
      regressed by more than THRESHOLD in subframes_per_sec. Records the
      baseline lacks are reported as new; baseline records absent from the
      run are a warning by default (the bench may simply not have run) —
      with --strict they fail the gate, for jobs that are supposed to have
      produced every baselined record (a bench binary that silently
      crashed or was dropped from the merge must not pass); records with a
      zero baseline throughput are skipped (wall-clock-only records).

  speedup BENCH --bench NAME --base CONFIG --test CONFIG
          [--min-ratio 2.0] [--metric candidates|subframes]
      Gate a required improvement rather than the absence of a regression:
      find the NAME/CONFIG base and test records in BENCH and fail unless
      the test record's throughput is at least MIN_RATIO x the base
      record's. With the default metric, candidates, throughput is
      decode_attempts per wall_ms — the CI decode-bench job holds the
      lockstep SIMD decoder to >= 2x the scalar path this way, and both
      records must come from the same run (equal decode_attempts — same
      work) with nonzero wall_ms. With --metric subframes the gate
      compares subframes_per_sec directly (the two configs simulate the
      identical scenario by construction — the determinism suite pins
      that — so no work-equality check applies); the CI bench-smoke job
      holds bench_shard's 4-shard config to >= 2.5x the 1-shard config
      this way.

  write-baseline BENCH BASELINE
      Rewrite BASELINE from BENCH, dropping fields that should not be
      pinned (wall_ms varies with the machine; subframes_per_sec is the
      gated signal).

  chaos CHAOS_JSON [--tput-factor 0.95] [--delay-factor 1.10]
           [--clean-factor 0.98]
      Gate the hybrid win conditions on the Part-3 matrix bench_fault
      emits via --chaos-json (records keyed by fault_profile + algo,
      schema_version 1). Per chaos profile the hybrid must reach
      TPUT_FACTOR x the best single estimator's throughput at
      DELAY_FACTOR x PBE's P95 delay; on the clean profile ("none") it
      must stay within CLEAN_FACTOR of PBE. The conditions are re-derived
      here from the raw records, independent of the C++ assertions — a
      bench binary that silently stopped enforcing them still fails CI.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        records = json.load(f)
    if not isinstance(records, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    return records


def cmd_merge(args):
    merged = []
    for path in args.inputs:
        try:
            merged.extend(load_records(path))
        except FileNotFoundError:
            print(f"warning: {path} not found, skipping (bench not run?)",
                  file=sys.stderr)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"merged {len(merged)} records from {len(args.inputs)} files "
          f"into {args.out}")
    return 0


def key(rec):
    return (rec["bench"], rec["config"])


def cmd_compare(args):
    new = {key(r): r for r in load_records(args.bench)}
    base = {key(r): r for r in load_records(args.baseline)}
    failures = []
    missing = []
    for k, b in sorted(base.items()):
        base_sps = b.get("subframes_per_sec", 0.0)
        if base_sps <= 0:
            continue  # wall-clock-only record: nothing to gate
        n = new.get(k)
        if n is None:
            print(f"  MISSING  {k[0]}/{k[1]} (in baseline, not in run)")
            missing.append(k)
            continue
        sps = n.get("subframes_per_sec", 0.0)
        ratio = sps / base_sps
        status = "ok" if ratio >= 1.0 - args.threshold else "REGRESSED"
        print(f"  {status:10s}{k[0]}/{k[1]}: {sps:.0f} vs baseline "
              f"{base_sps:.0f} subframes/s ({ratio:.2f}x)")
        if status != "ok":
            failures.append(k)
    for k in sorted(set(new) - set(base)):
        print(f"  NEW      {k[0]}/{k[1]} (not in baseline)")
    if missing:
        if args.strict:
            print(f"{len(missing)} baseline record(s) absent from the run "
                  f"— failing (--strict)", file=sys.stderr)
            return 1
        print(f"warning: {len(missing)} baseline record(s) absent from the "
              f"run (bench not executed?) — not gating on them",
              file=sys.stderr)
    if failures:
        print(f"{len(failures)} record(s) regressed more than "
              f"{100 * args.threshold:.0f}% vs {args.baseline}")
        return 1
    print("bench gate passed")
    return 0


def cmd_speedup(args):
    records = [r for r in load_records(args.bench_file)
               if r.get("bench") == args.bench]
    by_config = {r["config"]: r for r in records}
    for cfg in (args.base, args.test):
        if cfg not in by_config:
            raise SystemExit(
                f"{args.bench_file}: no {args.bench}/{cfg} record")
    base, test = by_config[args.base], by_config[args.test]
    if args.metric == "subframes":
        base_rate = base.get("subframes_per_sec", 0.0)
        test_rate = test.get("subframes_per_sec", 0.0)
        if base_rate <= 0 or test_rate <= 0:
            raise SystemExit(
                f"{args.bench}: subframes_per_sec missing or zero")
        unit = "subframes/s"
    else:
        for r in (base, test):
            if r.get("wall_ms", 0.0) <= 0:
                raise SystemExit(
                    f"{args.bench}/{r['config']}: wall_ms missing or zero "
                    f"(speedup needs raw run records, not a slimmed "
                    f"baseline)")
        if base.get("decode_attempts") != test.get("decode_attempts"):
            print(f"  base {base['decode_attempts']} vs test "
                  f"{test['decode_attempts']} decode attempts — the two "
                  f"configs did different work, ratio is meaningless")
            return 1
        base_rate = base["decode_attempts"] * 1000.0 / base["wall_ms"]
        test_rate = test["decode_attempts"] * 1000.0 / test["wall_ms"]
        unit = "candidates/s"
    ratio = test_rate / base_rate if base_rate > 0 else 0.0
    ok = ratio >= args.min_ratio
    print(f"  {'ok' if ok else 'TOO SLOW':9s}{args.bench}: {args.test} "
          f"{test_rate:.0f} vs {args.base} {base_rate:.0f} {unit} "
          f"({ratio:.2f}x, need >= {args.min_ratio:.2f}x)")
    if not ok:
        return 1
    print("speedup gate passed")
    return 0


def cmd_write_baseline(args):
    records = load_records(args.bench)
    slim = [
        {
            "bench": r["bench"],
            "config": r["config"],
            "subframes_per_sec": round(r.get("subframes_per_sec", 0.0), 1),
            "decode_attempts": r.get("decode_attempts", 0),
            "threads": r.get("threads", 1),
        }
        for r in records
    ]
    with open(args.baseline, "w") as f:
        json.dump(slim, f, indent=2)
        f.write("\n")
    print(f"wrote {len(slim)} baseline records to {args.baseline}")
    return 0


def cmd_chaos(args):
    records = [r for r in load_records(args.chaos)
               if r.get("part") == "chaos"]
    if not records:
        raise SystemExit(f"{args.chaos}: no part=chaos records")
    matrix = {}
    for r in records:
        matrix.setdefault(r["fault_profile"], {})[r["algo"]] = r
    failures = []
    for profile, algos in sorted(matrix.items()):
        missing = {"pbe", "bbr", "hybrid"} - set(algos)
        if missing:
            print(f"  INCOMPLETE {profile}: missing {sorted(missing)}")
            failures.append(profile)
            continue
        pbe, bbr, hyb = algos["pbe"], algos["bbr"], algos["hybrid"]
        if profile == "none":
            need = args.clean_factor * pbe["tput_mbps"]
            ok = hyb["tput_mbps"] >= need
            print(f"  {'ok' if ok else 'FAIL':5s}{profile:16s} hybrid "
                  f"{hyb['tput_mbps']:.2f} vs pbe {pbe['tput_mbps']:.2f} "
                  f"Mbit/s (need >= {need:.2f})")
        else:
            need_tput = args.tput_factor * max(pbe["tput_mbps"],
                                               bbr["tput_mbps"])
            need_p95 = args.delay_factor * pbe["p95_delay_ms"]
            ok = (hyb["tput_mbps"] >= need_tput
                  and hyb["p95_delay_ms"] <= need_p95)
            print(f"  {'ok' if ok else 'FAIL':5s}{profile:16s} hybrid "
                  f"{hyb['tput_mbps']:.2f} Mbit/s (need >= {need_tput:.2f}), "
                  f"p95 {hyb['p95_delay_ms']:.1f} ms "
                  f"(need <= {need_p95:.1f})")
        if not ok:
            failures.append(profile)
    if failures:
        print(f"{len(failures)} chaos profile(s) failed the hybrid win "
              f"conditions: {', '.join(failures)}")
        return 1
    print(f"chaos gate passed ({len(matrix)} profiles)")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    m = sub.add_parser("merge")
    m.add_argument("out")
    m.add_argument("inputs", nargs="+")
    m.set_defaults(fn=cmd_merge)

    c = sub.add_parser("compare")
    c.add_argument("bench")
    c.add_argument("baseline")
    c.add_argument("--threshold", type=float, default=0.25)
    c.add_argument("--strict", action="store_true")
    c.set_defaults(fn=cmd_compare)

    s = sub.add_parser("speedup")
    s.add_argument("bench_file")
    s.add_argument("--bench", required=True)
    s.add_argument("--base", required=True)
    s.add_argument("--test", required=True)
    s.add_argument("--min-ratio", type=float, default=2.0)
    s.add_argument("--metric", choices=["candidates", "subframes"],
                   default="candidates")
    s.set_defaults(fn=cmd_speedup)

    w = sub.add_parser("write-baseline")
    w.add_argument("bench")
    w.add_argument("baseline")
    w.set_defaults(fn=cmd_write_baseline)

    ch = sub.add_parser("chaos")
    ch.add_argument("chaos")
    ch.add_argument("--tput-factor", type=float, default=0.95)
    ch.add_argument("--delay-factor", type=float, default=1.10)
    ch.add_argument("--clean-factor", type=float, default=0.98)
    ch.set_defaults(fn=cmd_chaos)

    args = p.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
