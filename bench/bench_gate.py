#!/usr/bin/env python3
"""Merge bench --json outputs and gate CI on throughput regressions.

Every bench binary accepts `--json <path>` (see bench/bench_common.h) and
writes a JSON array of records:

  {"bench": ..., "config": ..., "wall_ms": ..., "subframes_per_sec": ...,
   "decode_attempts": ..., "threads": ...}

Subcommands:

  merge OUT IN [IN...]
      Concatenate the record arrays from the IN files into OUT (the
      BENCH.json artifact the CI bench-smoke job uploads). Inputs that do
      not exist are skipped with a warning — a bench that did not run in
      this smoke must not crash the merge.

  compare BENCH BASELINE [--threshold 0.25]
      Fail (exit 1) if any (bench, config) record present in both files
      regressed by more than THRESHOLD in subframes_per_sec. Records the
      baseline lacks are reported as new; baseline records absent from the
      run are a warning, not a failure (the bench may simply not have run);
      records with a zero baseline throughput are skipped
      (wall-clock-only records).

  write-baseline BENCH BASELINE
      Rewrite BASELINE from BENCH, dropping fields that should not be
      pinned (wall_ms varies with the machine; subframes_per_sec is the
      gated signal).
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        records = json.load(f)
    if not isinstance(records, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    return records


def cmd_merge(args):
    merged = []
    for path in args.inputs:
        try:
            merged.extend(load_records(path))
        except FileNotFoundError:
            print(f"warning: {path} not found, skipping (bench not run?)",
                  file=sys.stderr)
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"merged {len(merged)} records from {len(args.inputs)} files "
          f"into {args.out}")
    return 0


def key(rec):
    return (rec["bench"], rec["config"])


def cmd_compare(args):
    new = {key(r): r for r in load_records(args.bench)}
    base = {key(r): r for r in load_records(args.baseline)}
    failures = []
    missing = []
    for k, b in sorted(base.items()):
        base_sps = b.get("subframes_per_sec", 0.0)
        if base_sps <= 0:
            continue  # wall-clock-only record: nothing to gate
        n = new.get(k)
        if n is None:
            print(f"  MISSING  {k[0]}/{k[1]} (in baseline, not in run)")
            missing.append(k)
            continue
        sps = n.get("subframes_per_sec", 0.0)
        ratio = sps / base_sps
        status = "ok" if ratio >= 1.0 - args.threshold else "REGRESSED"
        print(f"  {status:10s}{k[0]}/{k[1]}: {sps:.0f} vs baseline "
              f"{base_sps:.0f} subframes/s ({ratio:.2f}x)")
        if status != "ok":
            failures.append(k)
    for k in sorted(set(new) - set(base)):
        print(f"  NEW      {k[0]}/{k[1]} (not in baseline)")
    if missing:
        print(f"warning: {len(missing)} baseline record(s) absent from the "
              f"run (bench not executed?) — not gating on them",
              file=sys.stderr)
    if failures:
        print(f"{len(failures)} record(s) regressed more than "
              f"{100 * args.threshold:.0f}% vs {args.baseline}")
        return 1
    print("bench gate passed")
    return 0


def cmd_write_baseline(args):
    records = load_records(args.bench)
    slim = [
        {
            "bench": r["bench"],
            "config": r["config"],
            "subframes_per_sec": round(r.get("subframes_per_sec", 0.0), 1),
            "decode_attempts": r.get("decode_attempts", 0),
            "threads": r.get("threads", 1),
        }
        for r in records
    ]
    with open(args.baseline, "w") as f:
        json.dump(slim, f, indent=2)
        f.write("\n")
    print(f"wrote {len(slim)} baseline records to {args.baseline}")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    m = sub.add_parser("merge")
    m.add_argument("out")
    m.add_argument("inputs", nargs="+")
    m.set_defaults(fn=cmd_merge)

    c = sub.add_parser("compare")
    c.add_argument("bench")
    c.add_argument("baseline")
    c.add_argument("--threshold", type=float, default=0.25)
    c.set_defaults(fn=cmd_compare)

    w = sub.add_parser("write-baseline")
    w.add_argument("bench")
    w.add_argument("baseline")
    w.set_defaults(fn=cmd_write_baseline)

    args = p.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
